package fleet

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"time"

	"authtext/internal/httpapi"
)

// FaultMode selects the failure a ChaosProxy injects. All modes model
// AVAILABILITY faults — the kinds of damage a flaky network or a dying
// replica inflicts — and none of them can forge verifiable data, so a
// correct client must classify every one of them as unavailability,
// never as tampering. The fleet test battery pins exactly that.
type FaultMode int32

const (
	// Pass forwards requests untouched.
	Pass FaultMode = iota
	// Drop aborts the connection before any response bytes are written
	// (the client sees a connection reset / EOF).
	Drop
	// Delay holds every request for the configured duration, then
	// forwards it (drives client and front-end timeouts).
	Delay
	// Err500 answers 500/internal without contacting the backend.
	Err500
	// Err503 answers 503/unavailable without contacting the backend.
	Err503
	// Truncate forwards the backend's headers (with the full
	// Content-Length) but writes only half the body before aborting the
	// connection — the client sees an unexpected EOF mid-body, the
	// classic mid-transfer crash.
	Truncate
)

// ChaosProxy is an httptest-backed fault-injection proxy in front of one
// replica, reused by the fleet tests: point a Frontend or a client at
// URL(), flip the mode per test phase, and count what got through. The
// zero fault mode (Pass) forwards transparently, including the binary
// frame negotiation and the generation header.
type ChaosProxy struct {
	target string
	hc     *http.Client
	srv    *httptest.Server

	mode  atomic.Int32
	delay atomic.Int64 // nanoseconds, for Delay

	requests atomic.Int64
	faults   atomic.Int64
}

// NewChaosProxy starts a proxy in front of target (a base URL). Close it
// when done.
func NewChaosProxy(target string) *ChaosProxy {
	p := &ChaosProxy{
		target: target,
		hc:     &http.Client{Timeout: 30 * time.Second},
	}
	p.delay.Store(int64(50 * time.Millisecond))
	p.srv = httptest.NewServer(http.HandlerFunc(p.serve))
	return p
}

// URL returns the proxy's base URL.
func (p *ChaosProxy) URL() string { return p.srv.URL }

// SetMode switches the injected fault for subsequent requests.
func (p *ChaosProxy) SetMode(m FaultMode) { p.mode.Store(int32(m)) }

// Mode returns the current fault mode.
func (p *ChaosProxy) Mode() FaultMode { return FaultMode(p.mode.Load()) }

// SetDelay sets the hold time used by Delay mode.
func (p *ChaosProxy) SetDelay(d time.Duration) { p.delay.Store(int64(d)) }

// Requests returns the number of requests that reached the proxy.
func (p *ChaosProxy) Requests() int64 { return p.requests.Load() }

// Faults returns the number of requests that had a fault injected.
func (p *ChaosProxy) Faults() int64 { return p.faults.Load() }

// Close shuts the proxy down.
func (p *ChaosProxy) Close() { p.srv.CloseClientConnections(); p.srv.Close() }

func (p *ChaosProxy) serve(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	switch FaultMode(p.mode.Load()) {
	case Drop:
		p.faults.Add(1)
		// ErrAbortHandler makes net/http sever the connection without
		// writing a response: the client observes a reset/EOF, the plain
		// transport failure a crashed replica produces.
		panic(http.ErrAbortHandler)
	case Err500:
		p.faults.Add(1)
		writeError(w, http.StatusInternalServerError, "internal", "chaos: injected 500")
		return
	case Err503:
		p.faults.Add(1)
		writeError(w, http.StatusServiceUnavailable, "unavailable", "chaos: injected 503")
		return
	case Delay:
		p.faults.Add(1)
		time.Sleep(time.Duration(p.delay.Load()))
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody))
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method,
		p.target+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	copyHeader(out.Header, r.Header, "Accept")
	copyHeader(out.Header, r.Header, "Content-Type")
	resp, err := p.hc.Do(out)
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	copyHeader(w.Header(), resp.Header, "Content-Type")
	copyHeader(w.Header(), resp.Header, httpapi.GenerationHeader)
	if FaultMode(p.mode.Load()) == Truncate && len(rb) > 1 {
		p.faults.Add(1)
		// Promise the full length, deliver half, then kill the
		// connection: the client's read fails with unexpected EOF before
		// any decode is attempted.
		w.Header().Set("Content-Length", strconv.Itoa(len(rb)))
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(rb[:len(rb)/2])
		// Force the half-body onto the wire before severing the
		// connection; otherwise it dies in the server's write buffer and
		// the client sees a pre-response EOF (Drop) instead of a mid-body
		// one.
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(rb)
}
