package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"authtext/internal/httpapi"
)

// Each fault mode must surface to a direct HTTP client exactly as the
// availability failure it models: a transport error for Drop, latency for
// Delay, plain 5xx statuses for the error modes, and an unexpected EOF
// mid-body for Truncate. Nothing a ChaosProxy does yields verifiable
// data, which is what lets the root-package battery pin that no fault is
// ever classified as tampering.
func TestChaosProxyModes(t *testing.T) {
	replica := newStubReplica(7)
	defer replica.Close()
	p := NewChaosProxy(replica.URL())
	defer p.Close()
	hc := &http.Client{Timeout: 5 * time.Second}

	get := func() (*http.Response, error) {
		return hc.Get(p.URL() + httpapi.PathHealthz)
	}

	// Pass: transparent forwarding, generation header included.
	resp, err := get()
	if err != nil {
		t.Fatalf("Pass: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get(httpapi.GenerationHeader) != "7" {
		t.Fatalf("Pass: status %d, gen header %q", resp.StatusCode, resp.Header.Get(httpapi.GenerationHeader))
	}
	var h httpapi.Health
	if err := json.Unmarshal(body, &h); err != nil || h.Generation != 7 {
		t.Fatalf("Pass: body %q (err %v)", body, err)
	}

	// Drop: the connection dies before a response.
	p.SetMode(Drop)
	if resp, err := get(); err == nil {
		resp.Body.Close()
		t.Fatal("Drop: request succeeded")
	}

	// Delay: the response arrives, but not before the configured hold.
	p.SetMode(Delay)
	p.SetDelay(80 * time.Millisecond)
	start := time.Now()
	resp, err = get()
	if err != nil {
		t.Fatalf("Delay: %v", err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("Delay: answered in %v, want >= 80ms", d)
	}

	// Err500 / Err503: plain status-coded errors, no backend contact.
	for _, tc := range []struct {
		mode FaultMode
		want int
	}{{Err500, http.StatusInternalServerError}, {Err503, http.StatusServiceUnavailable}} {
		p.SetMode(tc.mode)
		before := replica.searches.Load()
		resp, err := get()
		if err != nil {
			t.Fatalf("mode %d: %v", tc.mode, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("mode %d: status %d, want %d", tc.mode, resp.StatusCode, tc.want)
		}
		if replica.searches.Load() != before {
			t.Fatalf("mode %d: request reached the backend", tc.mode)
		}
	}

	// Truncate: headers promise the full body, the read dies halfway.
	p.SetMode(Truncate)
	resp, err = get()
	if err != nil {
		t.Fatalf("Truncate: request phase failed: %v", err)
	}
	_, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil {
		t.Fatal("Truncate: full body read succeeded")
	}

	if p.Requests() == 0 || p.Faults() == 0 {
		t.Fatalf("counters: requests=%d faults=%d", p.Requests(), p.Faults())
	}
}

// The front end must ride through every fault mode on one replica: the
// faulty backend is ejected and traffic keeps flowing via the healthy
// one; when the fault clears, the backend recovers. Delay is driven past
// the attempt timeout so it manifests as an availability failure too.
func TestFrontendRidesThroughChaos(t *testing.T) {
	healthy := newStubReplica(1)
	defer healthy.Close()
	victim := newStubReplica(1)
	defer victim.Close()
	p := NewChaosProxy(victim.URL())
	defer p.Close()

	f := newTestFrontend(t, []string{healthy.URL(), p.URL()}, func(c *Config) {
		c.AttemptTimeout = 250 * time.Millisecond
	})
	p.SetDelay(time.Second) // > AttemptTimeout

	for _, mode := range []FaultMode{Drop, Err500, Err503, Delay, Truncate} {
		p.SetMode(mode)
		// Some in-flight requests may fail while the fault is fresh
		// (Truncate in particular fails after the status line is relayed,
		// so it cannot be retried); the front end must converge to steady
		// success once probes eject the faulty path.
		waitFor(t, "steady success under fault mode", func() bool {
			for i := 0; i < 10; i++ {
				if doSearch(f).Code != http.StatusOK {
					return false
				}
			}
			return true
		})

		p.SetMode(Pass)
		waitFor(t, "victim to recover after fault cleared", func() bool {
			for _, b := range f.Status().Backends {
				if b.URL == p.URL() {
					return !b.Ejected && b.Healthy
				}
			}
			return false
		})
	}
	if p.Faults() == 0 {
		t.Fatal("chaos proxy injected no faults")
	}
}
