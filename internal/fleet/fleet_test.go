package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"authtext/internal/httpapi"
	"authtext/internal/obs"
)

// stubReplica is a minimal /v1 backend for routing tests: it answers
// healthz and search with a configurable generation (header + payload)
// and can be flipped into a failing state. The real protocol surface is
// exercised by the root-package fleet tests against live collections;
// here only the routing contract matters.
type stubReplica struct {
	gen      atomic.Uint64
	failing  atomic.Bool
	searches atomic.Int64
	srv      *httptest.Server
}

func newStubReplica(gen uint64) *stubReplica {
	s := &stubReplica{}
	s.gen.Store(gen)
	s.srv = httptest.NewServer(http.HandlerFunc(s.serve))
	return s
}

func (s *stubReplica) URL() string { return s.srv.URL }
func (s *stubReplica) Close()      { s.srv.Close() }

func (s *stubReplica) serve(w http.ResponseWriter, r *http.Request) {
	if s.failing.Load() {
		writeError(w, http.StatusInternalServerError, "internal", "stub: induced failure")
		return
	}
	gen := s.gen.Load()
	w.Header().Set(httpapi.GenerationHeader, strconv.FormatUint(gen, 10))
	switch r.URL.Path {
	case httpapi.PathHealthz:
		writeJSON(w, http.StatusOK, &httpapi.Health{
			Status: "ok", Documents: 3, Terms: 5, Generation: gen,
		})
	case httpapi.PathSearch:
		s.searches.Add(1)
		writeJSON(w, http.StatusOK, map[string]uint64{"generation": gen})
	default:
		writeError(w, http.StatusNotFound, httpapi.CodeNotFound, "stub: "+r.URL.Path)
	}
}

// newTestFrontend builds a frontend with timing tight enough for tests.
func newTestFrontend(t *testing.T, urls []string, mutate func(*Config)) *Frontend {
	t.Helper()
	cfg := Config{
		Backends:      urls,
		ProbeInterval: 10 * time.Millisecond,
		EjectAfter:    2,
		EjectFor:      40 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

func doSearch(f *Frontend) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, httpapi.PathSearch, strings.NewReader(`{"query":"x","r":1}`))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	f.ServeHTTP(w, req)
	return w
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no backends accepted")
	}
	if _, err := New(Config{Backends: []string{"not a url"}}); err == nil {
		t.Error("unparseable backend URL accepted")
	}
	if _, err := New(Config{Backends: []string{"ftp://x"}}); err == nil {
		t.Error("non-http scheme accepted")
	}
	if _, err := New(Config{Backends: []string{"http://a:1", "http://a:1/"}}); err == nil {
		t.Error("duplicate backend (modulo trailing slash) accepted")
	}
}

// Requests spread across healthy same-generation replicas; every request
// succeeds and the per-replica counts sum to the request count.
func TestProxyBalancesAcrossReplicas(t *testing.T) {
	var stubs []*stubReplica
	var urls []string
	for i := 0; i < 3; i++ {
		s := newStubReplica(4)
		defer s.Close()
		stubs = append(stubs, s)
		urls = append(urls, s.URL())
	}
	f := newTestFrontend(t, urls, nil)
	waitFor(t, "probes to learn the generation", func() bool { return f.Generation() == 4 })

	const n = 60
	for i := 0; i < n; i++ {
		if w := doSearch(f); w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, w.Code, w.Body)
		}
	}
	var sum int64
	for i, s := range stubs {
		c := s.searches.Load()
		sum += c
		if c == 0 {
			t.Errorf("replica %d received no traffic", i)
		}
	}
	if sum != n {
		t.Fatalf("replicas served %d searches, want %d", sum, n)
	}
}

// Generation-consistent routing: while one replica lags a swap, all
// traffic goes to the caught-up replica; if only lagging replicas remain,
// the front end answers 503 fleet_unavailable rather than serving a
// generation regression; once the laggard catches up, it serves again.
func TestGenerationConsistentRouting(t *testing.T) {
	ahead := newStubReplica(2)
	defer ahead.Close()
	behind := newStubReplica(1)
	defer behind.Close()
	f := newTestFrontend(t, []string{ahead.URL(), behind.URL()}, nil)
	waitFor(t, "watermark to reach 2", func() bool { return f.Generation() == 2 })

	for i := 0; i < 20; i++ {
		w := doSearch(f)
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, w.Code, w.Body)
		}
		if gh := w.Header().Get(httpapi.GenerationHeader); gh != "2" {
			t.Fatalf("request %d served generation %q, watermark is 2", i, gh)
		}
	}
	if got := behind.searches.Load(); got != 0 {
		t.Fatalf("lagging replica served %d searches, want 0", got)
	}

	// The caught-up replica dies: the laggard must NOT be allowed to
	// regress clients below the watermark.
	ahead.failing.Store(true)
	waitFor(t, "dead replica to be ejected", func() bool {
		for _, b := range f.Status().Backends {
			if b.URL == ahead.URL() {
				return b.Ejected
			}
		}
		return false
	})
	w := doSearch(f)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d with only a lagging replica, want 503", w.Code)
	}
	var er httpapi.ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != httpapi.CodeFleetUnavailable {
		t.Fatalf("error code %q, want %q", er.Error.Code, httpapi.CodeFleetUnavailable)
	}

	// The laggard catches up: service resumes from it, still at the
	// watermark generation.
	behind.gen.Store(2)
	waitFor(t, "service to resume from the caught-up laggard", func() bool {
		return doSearch(f).Code == http.StatusOK
	})
	if got := behind.searches.Load(); got == 0 {
		t.Fatal("caught-up laggard still received no traffic")
	}
}

// A failing backend is ejected after consecutive failures and recovers
// after it heals; requests keep succeeding throughout via the healthy
// replica.
func TestEjectionAndRecovery(t *testing.T) {
	good := newStubReplica(1)
	defer good.Close()
	bad := newStubReplica(1)
	defer bad.Close()
	reg := obs.NewRegistry()
	f := newTestFrontend(t, []string{good.URL(), bad.URL()}, func(c *Config) { c.Registry = reg })
	waitFor(t, "initial probes", func() bool {
		st := f.Status()
		return len(st.Backends) == 2 && st.Backends[0].Probed && st.Backends[1].Probed
	})

	bad.failing.Store(true)
	waitFor(t, "failing backend to be ejected", func() bool {
		for _, b := range f.Status().Backends {
			if b.URL == bad.URL() {
				return b.Ejected
			}
		}
		return false
	})
	// While ejected, every request succeeds via the healthy replica.
	for i := 0; i < 20; i++ {
		if w := doSearch(f); w.Code != http.StatusOK {
			t.Fatalf("request %d during ejection: status %d: %s", i, w.Code, w.Body)
		}
	}

	bad.failing.Store(false)
	waitFor(t, "healed backend to recover", func() bool {
		for _, b := range f.Status().Backends {
			if b.URL == bad.URL() {
				return !b.Ejected && b.Healthy
			}
		}
		return false
	})
	waitFor(t, "healed backend to serve again", func() bool {
		doSearch(f)
		return bad.searches.Load() > 0
	})
}

// Dynamic membership: traffic follows AddBackend/RemoveBackend.
func TestAddRemoveBackend(t *testing.T) {
	a := newStubReplica(1)
	defer a.Close()
	b := newStubReplica(1)
	defer b.Close()
	f := newTestFrontend(t, []string{a.URL()}, nil)

	if err := f.AddBackend(a.URL()); err == nil {
		t.Error("duplicate AddBackend accepted")
	}
	if err := f.AddBackend(b.URL()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "added backend to serve", func() bool {
		doSearch(f)
		return b.searches.Load() > 0
	})

	if !f.RemoveBackend(a.URL()) {
		t.Fatal("RemoveBackend(a) reported not present")
	}
	if f.RemoveBackend(a.URL()) {
		t.Fatal("second RemoveBackend(a) reported present")
	}
	served := a.searches.Load()
	for i := 0; i < 20; i++ {
		if w := doSearch(f); w.Code != http.StatusOK {
			t.Fatalf("request %d after removal: status %d", i, w.Code)
		}
	}
	if got := a.searches.Load(); got != served {
		t.Fatalf("removed backend served %d more searches", got-served)
	}
}

// The front end is serving-only: the admin surface is refused, unknown
// paths 404, and both healthz flavours answer.
func TestControlEndpoints(t *testing.T) {
	s := newStubReplica(3)
	defer s.Close()
	f := newTestFrontend(t, []string{s.URL()}, nil)
	waitFor(t, "probe", func() bool { return f.Generation() == 3 })

	req := httptest.NewRequest(http.MethodPost, httpapi.PathAdminUpdate, strings.NewReader(`{}`))
	w := httptest.NewRecorder()
	f.ServeHTTP(w, req)
	if w.Code != http.StatusForbidden {
		t.Fatalf("admin update: status %d, want 403", w.Code)
	}
	var er httpapi.ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != httpapi.CodeUpdateFailed {
		t.Fatalf("admin update error code %q", er.Error.Code)
	}

	w = httptest.NewRecorder()
	f.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/nope", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown path: status %d", w.Code)
	}

	w = httptest.NewRecorder()
	f.ServeHTTP(w, httptest.NewRequest(http.MethodGet, httpapi.PathHealthz, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", w.Code)
	}
	var h httpapi.Health
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Generation != 3 || h.Documents != 3 {
		t.Fatalf("synthesized healthz = %+v", h)
	}

	w = httptest.NewRecorder()
	f.ServeHTTP(w, httptest.NewRequest(http.MethodGet, PathFleetHealthz, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("fleet healthz: status %d", w.Code)
	}
	var fh FleetHealth
	if err := json.Unmarshal(w.Body.Bytes(), &fh); err != nil {
		t.Fatal(err)
	}
	if fh.Status != "ok" || fh.Generation != 3 || len(fh.Backends) != 1 || !fh.Backends[0].Healthy {
		t.Fatalf("fleet healthz = %+v", fh)
	}
}

// The fleet metrics move with traffic and are served at /v1/metrics.
func TestFleetMetrics(t *testing.T) {
	good := newStubReplica(1)
	defer good.Close()
	reg := obs.NewRegistry()
	f := newTestFrontend(t, []string{good.URL()}, func(c *Config) { c.Registry = reg })
	waitFor(t, "probe", func() bool { return f.Generation() == 1 })
	for i := 0; i < 5; i++ {
		if w := doSearch(f); w.Code != http.StatusOK {
			t.Fatalf("status %d", w.Code)
		}
	}
	w := httptest.NewRecorder()
	f.ServeHTTP(w, httptest.NewRequest(http.MethodGet, httpapi.PathMetrics, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", w.Code)
	}
	samples, err := obs.Parse(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct {
		name  string
		value float64
		any   bool
		label []obs.Label
	}{
		{name: "authtext_fleet_backends", value: 1},
		{name: "authtext_fleet_backends_available", value: 1},
		{name: "authtext_fleet_generation", value: 1},
		{name: "authtext_fleet_proxied_total", value: 5, label: []obs.Label{obs.L("outcome", "ok")}},
		{name: "authtext_fleet_proxied_total", value: 0, label: []obs.Label{obs.L("outcome", "unavailable")}},
		{name: "authtext_fleet_probes_total", any: true},
	} {
		s, ok := obs.FindSample(samples, want.name, want.label...)
		if !ok {
			t.Errorf("series %s %v missing", want.name, want.label)
			continue
		}
		if want.any {
			if s.Value <= 0 {
				t.Errorf("%s = %g, want > 0", s.Key(), s.Value)
			}
		} else if s.Value != want.value {
			t.Errorf("%s = %g, want %g", s.Key(), s.Value, want.value)
		}
	}
}

// Oversized request bodies are refused at the front end, before any
// backend sees them.
func TestProxyBodyCap(t *testing.T) {
	s := newStubReplica(1)
	defer s.Close()
	f := newTestFrontend(t, []string{s.URL()}, nil)
	req := httptest.NewRequest(http.MethodPost, httpapi.PathSearch,
		strings.NewReader(fmt.Sprintf(`{"query":%q,"r":1}`, strings.Repeat("x", maxProxyBody))))
	w := httptest.NewRecorder()
	f.ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", w.Code)
	}
	if s.searches.Load() != 0 {
		t.Fatal("oversized body reached a backend")
	}
}
