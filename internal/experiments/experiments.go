// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): the list-length distribution (Fig 4), the synthetic
// query-size sweep (Fig 13a–e), the VO breakdown (Table 2), the synthetic
// result-size sweep (Fig 14a–e), the TREC-like sweep (Fig 15a–e), the §4.1
// space-overhead claims and the §4.5 headline numbers.
//
// Each experiment runs the four algorithm/scheme variants over a workload,
// verifies every answer client-side (the verification wall time is the
// "CPU time" panel), and reports the same five metrics as the paper's
// figures: entries read per term, fraction of list read, I/O time
// (simulated), VO size, and client CPU time.
package experiments

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"authtext/internal/core"
	"authtext/internal/corpus"
	"authtext/internal/engine"
	"authtext/internal/index"
	"authtext/internal/sig"
	"authtext/internal/snapshot"
	"authtext/internal/workload"
)

// Variant identifies one algorithm/scheme combination.
type Variant struct {
	Algo   core.Algo
	Scheme core.Scheme
}

// String implements fmt.Stringer ("TRA-MHT", ...).
func (v Variant) String() string { return v.Algo.String() + "-" + v.Scheme.String() }

// Variants lists the four combinations evaluated throughout §4.
var Variants = []Variant{
	{core.AlgoTRA, core.SchemeMHT},
	{core.AlgoTRA, core.SchemeCMHT},
	{core.AlgoTNRA, core.SchemeMHT},
	{core.AlgoTNRA, core.SchemeCMHT},
}

// Metrics are per-query averages for one variant at one sweep point.
type Metrics struct {
	EntriesPerTerm float64 // panel (a)
	PctListRead    float64 // panel (b)
	IOMillis       float64 // panel (c), simulated disk time
	VOKB           float64 // panel (d)
	ClientMillis   float64 // panel (e), verification wall time
	ListLen        float64 // "List Length" baseline of panel (a)
	VOData         float64 // bytes, for Table 2
	VODigest       float64 // bytes, for Table 2
	ServerMillis   float64
	RandomIOs      float64
}

type agg struct {
	n int
	m Metrics
}

func (a *agg) add(st *engine.QueryStats, clientMs float64) {
	a.n++
	a.m.EntriesPerTerm += st.EntriesPerTerm
	a.m.PctListRead += st.PctListRead
	a.m.IOMillis += float64(st.IO.SimTime) / float64(time.Millisecond)
	a.m.VOKB += float64(st.VO.Total()) / 1024
	a.m.ClientMillis += clientMs
	a.m.ListLen += st.AvgListLen
	a.m.VOData += float64(st.VO.Data)
	a.m.VODigest += float64(st.VO.Digest)
	a.m.ServerMillis += float64(st.ServerWall) / float64(time.Millisecond)
	a.m.RandomIOs += float64(st.IO.RandomReads)
}

func (a *agg) mean() Metrics {
	if a.n == 0 {
		return Metrics{}
	}
	f := 1 / float64(a.n)
	m := a.m
	m.EntriesPerTerm *= f
	m.PctListRead *= f
	m.IOMillis *= f
	m.VOKB *= f
	m.ClientMillis *= f
	m.ListLen *= f
	m.VOData *= f
	m.VODigest *= f
	m.ServerMillis *= f
	m.RandomIOs *= f
	return m
}

// Fixture is a built collection shared by the experiments.
type Fixture struct {
	Profile corpus.Profile
	Col     *engine.Collection
}

// NewFixture generates the corpus and builds the collection. With rsa set
// it signs with RSA-1024 (paper-faithful but slow at scale); otherwise it
// uses the keyed-hash signer with RSA-sized signatures (DESIGN.md §3.7).
func NewFixture(p corpus.Profile, rsa bool) (*Fixture, error) {
	var signer sig.Signer
	var err error
	if rsa {
		signer, err = sig.NewRSASigner(sig.DefaultRSABits)
	} else {
		signer, err = sig.NewHMACSigner([]byte("experiments-"+p.Name), 128)
	}
	if err != nil {
		return nil, err
	}
	docs := corpus.Generate(p)
	col, err := engine.BuildCollection(docs, engine.DefaultConfig(signer))
	if err != nil {
		return nil, err
	}
	return &Fixture{Profile: p, Col: col}, nil
}

// RunPoint executes the workload at result size r for all four variants and
// returns per-variant mean metrics. Every result is verified; a
// verification failure aborts the experiment (it would mean the
// implementation, not the adversary, is wrong).
func RunPoint(col *engine.Collection, queries [][]string, r int) (map[Variant]Metrics, error) {
	aggs := make(map[Variant]*agg, len(Variants))
	for _, v := range Variants {
		aggs[v] = &agg{}
	}
	for _, qTokens := range queries {
		for _, v := range Variants {
			res, voBytes, st, err := col.Search(qTokens, r, v.Algo, v.Scheme)
			if err != nil {
				return nil, fmt.Errorf("experiments: %v on %v: %w", v, qTokens, err)
			}
			dur, err := col.VerifyResult(qTokens, r, res, voBytes)
			if err != nil {
				return nil, fmt.Errorf("experiments: %v on %v: verification: %w", v, qTokens, err)
			}
			aggs[v].add(st, float64(dur)/float64(time.Millisecond))
		}
	}
	out := make(map[Variant]Metrics, len(Variants))
	for v, a := range aggs {
		out[v] = a.mean()
	}
	return out, nil
}

// Options tunes experiment scale.
type Options struct {
	// Queries per sweep point (the paper uses 1000 synthetic queries and
	// the 100 TREC topics).
	Queries int
	// QSizes is the Fig 13 / Table 2 query-size sweep.
	QSizes []int
	// RValues is the Fig 14 / Fig 15 result-size sweep.
	RValues []int
	// Seed for workload generation.
	Seed int64
}

// DefaultOptions mirrors the paper's sweeps at a tractable query count.
func DefaultOptions() Options {
	return Options{
		Queries: 100,
		QSizes:  []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20},
		RValues: []int{10, 20, 40, 60, 80},
		Seed:    42,
	}
}

// SweepResult holds per-variant metrics across a sweep.
type SweepResult struct {
	X      []int // sweep variable (query size or result size)
	Points []map[Variant]Metrics
}

// Fig13 runs the synthetic workload varying query size with r = 10.
func Fig13(f *Fixture, opts Options, w io.Writer) (*SweepResult, error) {
	res := &SweepResult{}
	for _, qs := range opts.QSizes {
		queries := workload.Synthetic(f.Col.Index(), opts.Queries, qs, opts.Seed+int64(qs))
		point, err := RunPoint(f.Col, queries, 10)
		if err != nil {
			return nil, err
		}
		res.X = append(res.X, qs)
		res.Points = append(res.Points, point)
	}
	printSweep(w, "Figure 13 — synthetic workload, varying query size (r=10)", "q", res)
	return res, nil
}

// Fig14 runs the synthetic workload varying result size with q = 3.
func Fig14(f *Fixture, opts Options, w io.Writer) (*SweepResult, error) {
	queries := workload.Synthetic(f.Col.Index(), opts.Queries, 3, opts.Seed)
	res := &SweepResult{}
	for _, r := range opts.RValues {
		point, err := RunPoint(f.Col, queries, r)
		if err != nil {
			return nil, err
		}
		res.X = append(res.X, r)
		res.Points = append(res.Points, point)
	}
	printSweep(w, "Figure 14 — synthetic workload, varying result size (q=3)", "r", res)
	return res, nil
}

// Fig15 runs the TREC-like workload varying result size.
func Fig15(f *Fixture, opts Options, w io.Writer) (*SweepResult, error) {
	queries := workload.TRECLike(f.Col.Index(), opts.Queries, opts.Seed)
	res := &SweepResult{}
	for _, r := range opts.RValues {
		point, err := RunPoint(f.Col, queries, r)
		if err != nil {
			return nil, err
		}
		res.X = append(res.X, r)
		res.Points = append(res.Points, point)
	}
	printSweep(w, "Figure 15 — TREC-like workload, varying result size", "r", res)
	return res, nil
}

// Table2 reports the VO composition (data% vs digest%) of the TRA variants
// across query sizes.
func Table2(f *Fixture, opts Options, w io.Writer) (*SweepResult, error) {
	res := &SweepResult{}
	for _, qs := range opts.QSizes {
		queries := workload.Synthetic(f.Col.Index(), opts.Queries, qs, opts.Seed+int64(qs))
		point, err := RunPoint(f.Col, queries, 10)
		if err != nil {
			return nil, err
		}
		res.X = append(res.X, qs)
		res.Points = append(res.Points, point)
	}
	fmt.Fprintln(w, "Table 2 — Breakdown of VO size (TRA), data% vs digest%")
	fmt.Fprintf(w, "%-8s", "QSize")
	for _, x := range res.X {
		fmt.Fprintf(w, "%8d", x)
	}
	fmt.Fprintln(w)
	for _, v := range []Variant{{core.AlgoTRA, core.SchemeMHT}, {core.AlgoTRA, core.SchemeCMHT}} {
		fmt.Fprintf(w, "%s:\n", map[core.Scheme]string{core.SchemeMHT: "MHT", core.SchemeCMHT: "CMHT"}[v.Scheme])
		fmt.Fprintf(w, "%-8s", "Data(%)")
		for _, p := range res.Points {
			m := p[v]
			d, _ := share(m.VOData, m.VODigest)
			fmt.Fprintf(w, "%8.0f", d)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-8s", "Dig(%)")
		for _, p := range res.Points {
			m := p[v]
			_, g := share(m.VOData, m.VODigest)
			fmt.Fprintf(w, "%8.0f", g)
		}
		fmt.Fprintln(w)
	}
	return res, nil
}

func share(data, digest float64) (float64, float64) {
	t := data + digest
	if t == 0 {
		return 0, 0
	}
	return 100 * data / t, 100 * digest / t
}

// Fig4 prints the inverted-list length distribution.
func Fig4(f *Fixture, w io.Writer) corpus.Distribution {
	idx := f.Col.Index()
	d := corpus.Describe(idx.ListLengths(), idx.N)
	fmt.Fprintln(w, "Figure 4 — inverted list length distribution")
	fmt.Fprintf(w, "  documents n = %d, dictionary m = %d\n", idx.N, d.Terms)
	fmt.Fprintf(w, "  terms with 2-5 postings: %.1f%% (paper: >50%%)\n", 100*d.ShortShare)
	fmt.Fprintf(w, "  longest list: %d = %.2f·n (paper: 127,848 = 0.74·n)\n", d.MaxLen, d.MaxLenRatio)
	fmt.Fprintln(w, "  cumulative distribution:")
	for _, c := range d.Cumulative {
		fmt.Fprintf(w, "    ≤ %-8d : %5.1f%%\n", c.MaxLen, 100*c.Frac)
	}
	return d
}

// SpaceReport prints the storage overhead of each variant relative to a
// plain (unauthenticated) corpus + inverted index, the quantity behind the
// §4.1 claims (TNRA < 1 %, TRA ≈ 25 %).
func SpaceReport(f *Fixture, w io.Writer) map[string]float64 {
	sp := f.Col.Space()
	base := float64(sp.ContentBytes + sp.PlainListBytes)
	sigShare := float64(sp.TermSigBytes) / 4 // one structure kind's signatures
	over := map[string]float64{
		"TNRA-MHT":  100 * sigShare / base,
		"TNRA-CMHT": 100 * (float64(sp.ChainTNRABytes-sp.PlainListBytes) + sigShare) / base,
		"TRA-MHT":   100 * (float64(sp.DocRecordBytes) + sigShare) / base,
		"TRA-CMHT":  100 * (float64(sp.ChainTRABytes-sp.PlainListBytes) + float64(sp.DocRecordBytes) + sigShare) / base,
	}
	fmt.Fprintln(w, "Space overhead over plain corpus + inverted index (§4.1)")
	fmt.Fprintf(w, "  corpus %0.1f MB, plain index %0.1f MB, doc records %0.1f MB\n",
		mb(sp.ContentBytes), mb(sp.PlainListBytes), mb(sp.DocRecordBytes))
	for _, v := range []string{"TNRA-MHT", "TNRA-CMHT", "TRA-MHT", "TRA-CMHT"} {
		fmt.Fprintf(w, "  %-10s %+6.2f%%\n", v, over[v])
	}
	fmt.Fprintln(w, "  paper: TNRA < 1% extra, TRA ≈ 25% extra (document-MHTs)")
	return over
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }

// Headline reproduces the §4.5 summary numbers: synthetic q=3 r=20 and
// TREC r=20, for TNRA-CMHT.
func Headline(f *Fixture, opts Options, w io.Writer) (map[string]Metrics, error) {
	out := make(map[string]Metrics, 2)
	syn := workload.Synthetic(f.Col.Index(), opts.Queries, 3, opts.Seed)
	p, err := RunPoint(f.Col, syn, 20)
	if err != nil {
		return nil, err
	}
	best := Variant{core.AlgoTNRA, core.SchemeCMHT}
	out["synthetic"] = p[best]
	trec := workload.TRECLike(f.Col.Index(), opts.Queries, opts.Seed)
	p, err = RunPoint(f.Col, trec, 20)
	if err != nil {
		return nil, err
	}
	out["trec"] = p[best]
	fmt.Fprintln(w, "Headline TNRA-CMHT costs (§4.5, r=20)")
	fmt.Fprintf(w, "  synthetic q=3: I/O %.1f ms, VO %.1f KB, verify %.1f ms (paper: <50 ms, ~1 KB, <10 ms)\n",
		out["synthetic"].IOMillis, out["synthetic"].VOKB, out["synthetic"].ClientMillis)
	fmt.Fprintf(w, "  TREC-like:     I/O %.1f ms, VO %.1f KB, verify %.1f ms (paper: ~60 ms, 32 KB, 40 ms)\n",
		out["trec"].IOMillis, out["trec"].VOKB, out["trec"].ClientMillis)
	return out, nil
}

// printSweep renders the five panels of a figure as aligned text tables.
func printSweep(w io.Writer, title, xName string, res *SweepResult) {
	fmt.Fprintln(w, title)
	panels := []struct {
		name string
		get  func(Metrics) float64
		base bool // include the List-Length baseline column
	}{
		{"(a) entries read per term", func(m Metrics) float64 { return m.EntriesPerTerm }, true},
		{"(b) % of inverted list read", func(m Metrics) float64 { return m.PctListRead }, false},
		{"(c) I/O time (ms, simulated)", func(m Metrics) float64 { return m.IOMillis }, false},
		{"(d) VO size (KB)", func(m Metrics) float64 { return m.VOKB }, false},
		{"(e) client CPU time (ms)", func(m Metrics) float64 { return m.ClientMillis }, false},
	}
	for _, panel := range panels {
		fmt.Fprintf(w, "\n%s\n", panel.name)
		fmt.Fprintf(w, "%-5s", xName)
		if panel.base {
			fmt.Fprintf(w, "%12s", "ListLen")
		}
		for _, v := range Variants {
			fmt.Fprintf(w, "%12s", v)
		}
		fmt.Fprintln(w)
		for i, x := range res.X {
			fmt.Fprintf(w, "%-5d", x)
			if panel.base {
				fmt.Fprintf(w, "%12.1f", res.Points[i][Variants[0]].ListLen)
			}
			for _, v := range Variants {
				fmt.Fprintf(w, "%12.2f", panel.get(res.Points[i][v]))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

// BuildIndexOnly builds just the inverted index for a profile (Fig 4 needs
// no authentication structures); exposed for the distribution benchmark.
func BuildIndexOnly(p corpus.Profile) (*index.Index, error) {
	return index.Build(corpus.Generate(p), index.DefaultOptions())
}

// SnapshotReport holds the cold-start-vs-snapshot-open comparison.
type SnapshotReport struct {
	Rebuild   time.Duration // full owner-side build (the cold start it replaces)
	Write     time.Duration // serialising the snapshot
	Open      time.Duration // reopening it (the warm start)
	SizeBytes int
	Speedup   float64 // Rebuild / Open
}

// SnapshotCompare measures what snapshot persistence buys: the fixture's
// measured build time (index + four structures + signatures) against
// writing and reopening a snapshot of the same collection. The reopened
// collection answers and verifies a query, so the timing covers a genuinely
// serviceable server.
func SnapshotCompare(f *Fixture, w io.Writer) (*SnapshotReport, error) {
	rep := &SnapshotReport{Rebuild: f.Col.BuildStats().BuildTime}

	var buf bytes.Buffer
	start := time.Now()
	if err := snapshot.Write(&buf, f.Col); err != nil {
		return nil, err
	}
	rep.Write = time.Since(start)
	rep.SizeBytes = buf.Len()

	start = time.Now()
	col, err := snapshot.Open(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, err
	}
	rep.Open = time.Since(start)
	if rep.Open > 0 {
		rep.Speedup = float64(rep.Rebuild) / float64(rep.Open)
	}

	queries := workload.Synthetic(col.Index(), 1, 3, 7)
	res, voBytes, _, err := col.Search(queries[0], 10, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		return nil, err
	}
	if _, err := f.Col.VerifyResult(queries[0], 10, res, voBytes); err != nil {
		return nil, fmt.Errorf("experiments: snapshot-opened collection failed verification: %w", err)
	}

	fmt.Fprintln(w, "Cold start vs snapshot open")
	fmt.Fprintf(w, "  rebuild (index + sign): %v\n", rep.Rebuild.Round(time.Millisecond))
	fmt.Fprintf(w, "  snapshot write:         %v (%.1f MB)\n",
		rep.Write.Round(time.Millisecond), float64(rep.SizeBytes)/(1<<20))
	fmt.Fprintf(w, "  snapshot open:          %v\n", rep.Open.Round(time.Millisecond))
	fmt.Fprintf(w, "  speedup:                %.0fx faster than rebuilding\n", rep.Speedup)
	return rep, nil
}
