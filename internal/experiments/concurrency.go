package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"authtext/internal/core"
	"authtext/internal/workload"
)

// ConcurrencyPoint is one row of the concurrency experiment: one immutable
// collection hammered by Goroutines concurrent clients.
type ConcurrencyPoint struct {
	Goroutines int
	// QPS is queries per second of wall time across all clients.
	QPS float64
	// Speedup is QPS relative to the single-client baseline.
	Speedup float64
	// MeanWall is the mean per-query server wall time (it grows with
	// contention once clients outnumber cores; QPS is the throughput
	// figure of merit).
	MeanWall time.Duration
	// MeanIO is the mean simulated per-query disk time; it is independent
	// of concurrency because every query runs on its own store session.
	MeanIO time.Duration
}

// ConcurrencyReport is the result of ConcurrencyCompare.
type ConcurrencyReport struct {
	Points []ConcurrencyPoint
}

// ConcurrencyCompare hammers one (unsharded) collection with 1, 2, 4, 8
// and 16 concurrent clients and reports throughput, per-query wall time
// and the (concurrency-invariant) simulated I/O time. Every client runs
// the same TNRA-CMHT workload at r=10; one answer per level is fully
// verified. Since the read path is lock-free, throughput scales with
// available cores; the single-client row is the serialized baseline a
// collection-wide query lock would pin every row to.
func ConcurrencyCompare(f *Fixture, queries int, w io.Writer) (*ConcurrencyReport, error) {
	if queries < 1 {
		queries = 20
	}
	qs := workload.Synthetic(f.Col.Index(), queries, 3, 271)

	// Warm-up pass: fault in content and verify one answer end to end.
	res, voBytes, _, err := f.Col.Search(qs[0], 10, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		return nil, err
	}
	if _, err := f.Col.VerifyResult(qs[0], 10, res, voBytes); err != nil {
		return nil, fmt.Errorf("experiments: concurrency warm-up answer failed verification: %w", err)
	}

	rep := &ConcurrencyReport{}
	fmt.Fprintf(w, "Concurrent clients on one collection (TNRA-CMHT, r=10, GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "  %-11s %12s %9s %12s %12s\n", "goroutines", "queries/sec", "speedup", "mean-wall", "mean-sim-io")
	var baseline float64
	for _, g := range []int{1, 2, 4, 8, 16} {
		point := ConcurrencyPoint{Goroutines: g}
		var wg sync.WaitGroup
		errs := make([]error, g)
		wallNanos := make([]int64, g)
		ioNanos := make([]int64, g)
		start := time.Now()
		for c := 0; c < g; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < queries; i++ {
					_, _, st, err := f.Col.Search(qs[(c*queries+i)%len(qs)], 10, core.AlgoTNRA, core.SchemeCMHT)
					if err != nil {
						errs[c] = err
						return
					}
					wallNanos[c] += st.ServerWall.Nanoseconds()
					ioNanos[c] += st.IO.SimTime.Nanoseconds()
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		total := g * queries
		point.QPS = float64(total) / elapsed.Seconds()
		var wallSum, ioSum int64
		for c := 0; c < g; c++ {
			wallSum += wallNanos[c]
			ioSum += ioNanos[c]
		}
		point.MeanWall = time.Duration(wallSum / int64(total))
		point.MeanIO = time.Duration(ioSum / int64(total))
		if baseline == 0 {
			baseline = point.QPS
		}
		point.Speedup = point.QPS / baseline
		rep.Points = append(rep.Points, point)
		fmt.Fprintf(w, "  %-11d %12.0f %8.2fx %12v %12v\n",
			g, point.QPS, point.Speedup, point.MeanWall.Round(time.Microsecond),
			point.MeanIO.Round(time.Microsecond))
	}
	return rep, nil
}
