package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"authtext"
	"authtext/internal/corpus"
	"authtext/internal/index"
	"authtext/internal/workload"
)

// The cache experiment goes beyond the paper's workloads: production
// query streams are heavily head-skewed (a small pool of hot queries
// replayed Zipf-fashion), which is exactly what the server-side VO cache
// (authtext.VOCache) feeds on. CacheCompare measures what it buys — and
// what document updates, which invalidate the cache wholesale by bumping
// the generation, take back — across skew exponents and update rates.

// metricsSink, when set, receives the telemetry of every live server the
// cache experiment builds, so `authbench -metrics-dump` can print (and CI
// can assert on) a final snapshot after the run.
var metricsSink *authtext.Metrics

// SetMetricsSink attaches m to every collection the experiments build
// from now on. The first experiment cache bound wins for the vocache
// series (Metrics.BindVOCache semantics); search, stage and live series
// aggregate across all points.
func SetMetricsSink(m *authtext.Metrics) { metricsSink = m }

// CachePoint is one row of the cache experiment: one Zipfian stream at
// one skew/update-rate setting, served once uncached and once cached.
type CachePoint struct {
	// ZipfS is the stream's skew exponent (larger = hotter head).
	ZipfS float64
	// UpdatesPer1000 is the number of single-document update batches
	// interleaved per 1000 queries; each bumps the generation and thereby
	// invalidates every cached answer.
	UpdatesPer1000 int
	// HitRate is hits/(hits+misses) over the cached run.
	HitRate float64
	// MedianUncached, MedianHit and MedianMiss are median per-query wall
	// latencies: the no-cache baseline, cache hits, and cache misses
	// (engine answer + cache fill).
	MedianUncached time.Duration
	MedianHit      time.Duration
	MedianMiss     time.Duration
	// Speedup is MedianUncached / MedianHit — what a repeat query gains.
	Speedup float64
}

// CacheReport is the result of CacheCompare.
type CacheReport struct {
	Points []CachePoint
}

// CacheCompare builds one live collection (fast signer: update cost is
// not the quantity under test) and replays Zipfian query streams against
// it, sweeping the skew exponent and the update rate. Every stream runs
// twice — without and with a VO cache — and the cached run classifies
// each query as hit or miss from the cache's own counters. One cached
// answer per point is fully verified client-side, pinning the protocol
// guarantee the cache must preserve.
func CacheCompare(p corpus.Profile, queries int, w io.Writer) (*CacheReport, error) {
	if queries < 1 {
		queries = 40
	}
	streamLen := queries * 10
	if streamLen < 400 {
		streamLen = 400
	}

	idocs := corpus.Generate(p)
	docs := make([]authtext.Document, len(idocs))
	for i, d := range idocs {
		docs[i] = authtext.Document{Content: d.Content, Tokens: d.Tokens}
	}
	// The facade hides its index, so build a plain one for workload
	// generation (cheap next to the authenticated build).
	idx, err := index.Build(idocs, index.DefaultOptions())
	if err != nil {
		return nil, err
	}

	rep := &CacheReport{}
	fmt.Fprintf(w, "Hot-query VO cache on Zipfian streams (TNRA-CMHT, r=10, %d queries/run)\n", streamLen)
	fmt.Fprintf(w, "  %-7s %-9s %9s %13s %13s %13s %9s\n",
		"zipf-s", "upd/1000", "hit-rate", "med-uncached", "med-hit", "med-miss", "speedup")
	for _, s := range []float64{1.1, 1.3, 1.5} {
		for _, upd := range []int{0, 20} {
			point, err := cachePoint(docs, idx, streamLen, s, upd)
			if err != nil {
				return nil, err
			}
			rep.Points = append(rep.Points, point)
			fmt.Fprintf(w, "  %-7.1f %-9d %8.1f%% %13v %13v %13v %8.1fx\n",
				point.ZipfS, point.UpdatesPer1000, 100*point.HitRate,
				point.MedianUncached.Round(time.Microsecond),
				point.MedianHit.Round(time.Microsecond),
				point.MedianMiss.Round(time.Microsecond),
				point.Speedup)
		}
	}
	fmt.Fprintln(w, "  (an update bumps the generation: every cached answer stops matching at once)")
	return rep, nil
}

// cachePoint measures one (skew, update-rate) setting on a fresh live
// collection.
func cachePoint(docs []authtext.Document, idx *index.Index, streamLen int, zipfS float64, updPer1000 int) (CachePoint, error) {
	point := CachePoint{ZipfS: zipfS, UpdatesPer1000: updPer1000}

	owner, _, err := authtext.NewLiveOwner(docs, authtext.WithFastSigner([]byte("cache-experiment")))
	if err != nil {
		return point, err
	}
	srv := owner.Server()
	if metricsSink != nil {
		owner.SetMetrics(metricsSink)
		srv.SetMetrics(metricsSink)
	}
	stream := workload.Zipfian(idx, streamLen, 50, 3, zipfS, 97)
	qs := make([]string, len(stream))
	for i, tokens := range stream {
		qs[i] = strings.Join(tokens, " ")
	}
	// Update positions: every updEvery-th query publishes one extra
	// document, invalidating the cache mid-stream.
	updEvery := 0
	if updPer1000 > 0 {
		updEvery = 1000 / updPer1000
	}

	// Uncached baseline over the same stream (no updates: the pure serve
	// cost repeat queries would pay without a cache).
	uncached := make([]time.Duration, 0, len(qs))
	for _, q := range qs {
		start := time.Now()
		if _, err := srv.Search(q, 10, authtext.TNRA, authtext.ChainMHT); err != nil {
			return point, err
		}
		uncached = append(uncached, time.Since(start))
	}

	cache := authtext.NewVOCache(32 << 20)
	srv.SetVOCache(cache)
	metricsSink.BindVOCache(cache)
	client := owner.Client()
	verified := false
	var hitLat, missLat []time.Duration
	for i, q := range qs {
		if updEvery > 0 && i > 0 && i%updEvery == 0 {
			if _, _, err := owner.AddDocuments([]authtext.Document{
				{Content: fmt.Appendf(nil, "cache experiment filler document %d", i)},
			}); err != nil {
				return point, err
			}
			// Keep the verifying client current, as a real deployment's
			// manifest channel would.
			m, msig := owner.ManifestUpdate()
			if err := client.Advance(m, msig); err != nil {
				return point, err
			}
		}
		before := cache.Stats().Hits
		start := time.Now()
		res, err := srv.Search(q, 10, authtext.TNRA, authtext.ChainMHT)
		lat := time.Since(start)
		if err != nil {
			return point, err
		}
		if cache.Stats().Hits > before {
			hitLat = append(hitLat, lat)
			if !verified {
				// Pin the transparency claim: a cached answer verifies like
				// any other.
				if err := client.Verify(q, 10, res); err != nil {
					return point, fmt.Errorf("experiments: cached answer failed verification: %w", err)
				}
				verified = true
			}
		} else {
			missLat = append(missLat, lat)
		}
	}

	st := cache.Stats()
	point.HitRate = st.HitRate()
	point.MedianUncached = median(uncached)
	point.MedianHit = median(hitLat)
	point.MedianMiss = median(missLat)
	if point.MedianHit > 0 {
		point.Speedup = float64(point.MedianUncached) / float64(point.MedianHit)
	}
	return point, nil
}

// median returns the middle element (0 on an empty slice).
func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return sorted[len(sorted)/2]
}
