package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"authtext/internal/core"
	"authtext/internal/corpus"
	"authtext/internal/engine"
	"authtext/internal/index"
	"authtext/internal/live"
	"authtext/internal/sig"
	"authtext/internal/workload"
)

// UpdatePoint is one row of the update experiment: one batch touching
// Docs documents (FractionPct of the corpus) published as a new
// generation.
type UpdatePoint struct {
	// Label names the row ("append 10%", "remove 10%", "replace oldest
	// 10%", ...).
	Label       string
	FractionPct float64
	Docs        int
	Generation  uint64
	// Signed / Reused are the signature counts of the rebuild; ReusePct
	// is Reused's share of all signatures the generation needed.
	Signed, Reused int
	ReusePct       float64
	// Rebuild is the wall time from accepting the batch to serving the
	// new generation.
	Rebuild time.Duration
}

// UpdateReport is the result of UpdateCompare.
type UpdateReport struct {
	InitialBuild time.Duration
	Points       []UpdatePoint
	// SwapVisible is the longest any concurrent searcher took to observe
	// the new generation after an update returned (the reader-visible
	// swap latency of the atomic pointer).
	SwapVisible time.Duration
	// SearchQPS is the searchers' aggregate throughput while the update
	// was building — queries keep flowing during a rebuild.
	SearchQPS float64
}

// UpdateCompare measures the live-collection update pipeline on a
// generated corpus. The fraction sweep uses dictionary-stable APPEND
// batches: new documents are drawn from the corpus's own empirical token
// distribution (the steady state of a corpus whose vocabulary has
// saturated — new text talks about what the collection already talks
// about), so no term enters or leaves the dictionary and the rebuild
// re-signs only the term lists the batch actually touches. A removal-only
// row shows the tombstone path (document IDs never shift, so a removal
// re-signs nothing but the manifest), and a final "replace oldest" row
// combines both — the regime that used to degrade to a full re-sign when
// removals renumbered every surviving document. docs/UPDATES.md explains
// the regimes.
func UpdateCompare(p corpus.Profile, rsa bool, w io.Writer) (*UpdateReport, error) {
	var signer sig.Signer
	var err error
	if rsa {
		// RSA is where reuse pays directly: every reused signature is a
		// private-key operation avoided.
		signer, err = sig.NewRSASigner(sig.DefaultRSABits)
	} else {
		signer, err = sig.NewHMACSigner([]byte("experiments-updates-"+p.Name), 128)
	}
	if err != nil {
		return nil, err
	}
	pool := corpus.Generate(p)
	n := p.Docs
	lc, handles, err := live.New(pool, engine.DefaultConfig(signer))
	if err != nil {
		return nil, err
	}
	rep := &UpdateReport{InitialBuild: lc.LastStats().Rebuild}
	fmt.Fprintf(w, "Live updates on %s (n=%d; initial build %v)\n",
		p.Name, n, rep.InitialBuild.Round(time.Millisecond))
	fmt.Fprintf(w, "  %-22s %8s %10s %10s %9s %12s\n",
		"batch", "docs", "signed", "reused", "reuse%", "rebuild")

	// Dictionary-stable batches drawn from the corpus's own token
	// distribution: the bag holds every corpus token that survived the
	// indexing pipeline, so sampling it uniformly reproduces the empirical
	// (Zipfian) term frequencies. New documents therefore concentrate
	// their mass on frequent terms, touching a small set of term lists —
	// the realistic steady state — and never introduce a term the
	// dictionary lacks (which would shift term IDs and void every reuse).
	idx := lc.Current().Index()
	var bag []string
	for _, d := range pool {
		for _, tok := range d.Tokens {
			if _, ok := idx.Lookup(tok); ok {
				bag = append(bag, tok)
			}
		}
	}
	rng := rand.New(rand.NewSource(p.Seed + 99))
	makeDoc := func() index.Document {
		toks := make([]string, int(p.AvgLen))
		for i := range toks {
			toks[i] = bag[rng.Intn(len(bag))]
		}
		return index.Document{Content: []byte(strings.Join(toks, " ")), Tokens: toks}
	}
	row := func(label string, st *live.UpdateStats, k int, frac float64) {
		total := st.Signed + st.Reused
		point := UpdatePoint{
			Label:       label,
			FractionPct: 100 * frac,
			Docs:        k,
			Generation:  st.Generation,
			Signed:      st.Signed,
			Reused:      st.Reused,
			ReusePct:    100 * float64(st.Reused) / float64(total),
			Rebuild:     st.Rebuild,
		}
		rep.Points = append(rep.Points, point)
		fmt.Fprintf(w, "  %-22s %8d %10d %10d %8.1f%% %12v\n",
			label, k, point.Signed, point.Reused, point.ReusePct,
			point.Rebuild.Round(time.Millisecond))
	}
	for _, frac := range []float64{0.01, 0.05, 0.10, 0.25, 0.50} {
		k := int(frac * float64(n))
		if k < 1 {
			k = 1
		}
		batch := make([]index.Document, k)
		for i := range batch {
			batch[i] = makeDoc()
		}
		newHandles, st, err := lc.Update(batch, nil)
		if err != nil {
			return nil, err
		}
		handles = append(handles, newHandles...)
		row(fmt.Sprintf("append %.0f%%", 100*frac), st, k, frac)
	}

	k := n / 10
	if k < 1 {
		k = 1
	}

	// Removal only: the removed documents become tombstoned slots — their
	// postings stay in the signed lists and their records stay signed — so
	// the rebuild re-signs nothing but the manifest.
	st, err := remove(lc, &handles, k)
	if err != nil {
		return nil, err
	}
	row("remove oldest 10%", st, k, 0.10)

	// Replace: remove the oldest documents and add replacements in one
	// batch. Under tombstones the removals are free, so the row costs what
	// an equal-size append costs — this used to degrade to a full re-sign
	// when removals renumbered every surviving document and term list.
	batch := make([]index.Document, k)
	for i := range batch {
		batch[i] = makeDoc()
	}
	st, err = replace(lc, &handles, batch, k)
	if err != nil {
		return nil, err
	}
	row("replace oldest 10%", st, k, 0.10)

	// Swap latency under concurrent search load: hammer the collection
	// with searchers while one more replacement batch lands, and measure
	// how long the new generation takes to become visible to them.
	const searchers = 8
	qs := workload.Synthetic(lc.Current().Index(), 64, 3, 977)
	beforeGen := lc.Generation()
	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		queries  atomic.Int64
		searchNs [searchers]atomic.Int64 // first observation of the new generation
	)
	for c := 0; c < searchers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				col := lc.Current()
				if _, _, _, err := col.Search(qs[(c+i)%len(qs)], 10, core.AlgoTNRA, core.SchemeCMHT); err != nil {
					return
				}
				queries.Add(1)
				m, _ := col.Manifest()
				if m.Generation > beforeGen && searchNs[c].Load() == 0 {
					searchNs[c].Store(time.Now().UnixNano())
				}
			}
		}(c)
	}
	time.Sleep(50 * time.Millisecond) // let the hammer spin up
	updStart := time.Now()
	_, st, err = lc.Update([]index.Document{makeDoc()}, nil)
	if err != nil {
		stop.Store(true)
		wg.Wait()
		return nil, err
	}
	swapDone := time.Now().UnixNano()
	time.Sleep(50 * time.Millisecond) // let every searcher observe the swap
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(updStart)
	rep.SearchQPS = float64(queries.Load()) / elapsed.Seconds()
	for c := 0; c < searchers; c++ {
		if ns := searchNs[c].Load(); ns > swapDone {
			if d := time.Duration(ns - swapDone); d > rep.SwapVisible {
				rep.SwapVisible = d
			}
		}
	}
	fmt.Fprintf(w, "  swap under load: rebuild %v, new generation %d visible to all %d searchers within %v, %.0f searches/sec meanwhile\n",
		st.Rebuild.Round(time.Millisecond), st.Generation, searchers,
		rep.SwapVisible.Round(time.Microsecond), rep.SearchQPS)
	return rep, nil
}

// replace removes the k oldest documents and adds the given replacements
// as one batch, keeping the handle list current.
func replace(lc *live.Collection, handles *[]uint64, add []index.Document, k int) (*live.UpdateStats, error) {
	newHandles, st, err := lc.Update(add, (*handles)[:k])
	if err != nil {
		return nil, err
	}
	*handles = append(append([]uint64(nil), (*handles)[k:]...), newHandles...)
	return st, nil
}

// remove tombstones the k oldest documents, keeping the handle list
// current.
func remove(lc *live.Collection, handles *[]uint64, k int) (*live.UpdateStats, error) {
	_, st, err := lc.Update(nil, (*handles)[:k])
	if err != nil {
		return nil, err
	}
	*handles = append([]uint64(nil), (*handles)[k:]...)
	return st, nil
}
