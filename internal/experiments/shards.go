package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"authtext/internal/core"
	"authtext/internal/corpus"
	"authtext/internal/engine"
	"authtext/internal/shard"
	"authtext/internal/sig"
	"authtext/internal/workload"
)

// ShardPoint is one row of the sharding experiment: the same corpus built
// and queried as a k-shard set.
type ShardPoint struct {
	Shards int
	// Build is the owner-side wall time for the full (parallel) build.
	Build time.Duration
	// ShardLatency is the mean critical-path query latency: the slowest
	// shard's server wall time per fanned-out query. This is the latency a
	// deployment with one core (or host) per shard observes, and the
	// figure of merit for fan-out: per-shard work shrinks with k.
	ShardLatency time.Duration
	// FanoutWall is the mean end-to-end fan-out wall time on THIS host —
	// it approaches ShardLatency only when spare cores back the shards.
	FanoutWall time.Duration
	// Verify is the mean client-side verification time (all shard VOs +
	// the merge).
	Verify time.Duration
	// Throughput is queries/second with GOMAXPROCS concurrent clients.
	Throughput float64
	// VOBytes is the mean summed VO size across shards per query.
	VOBytes float64
}

// ShardReport is the result of ShardCompare.
type ShardReport struct {
	Points []ShardPoint
}

// ShardCompare builds the profile's corpus as 1-, 2-, 4- and 8-shard sets
// (shard counts above the document count are skipped) and reports build
// time, per-shard critical-path latency, end-to-end fan-out wall time,
// verification time and parallel throughput. Every answer is fully
// verified (every shard VO plus the merged ranking).
func ShardCompare(p corpus.Profile, queries int, w io.Writer) (*ShardReport, error) {
	signer, err := sig.NewHMACSigner([]byte("shards-"+p.Name), 128)
	if err != nil {
		return nil, err
	}
	docs := corpus.Generate(p)
	if queries < 1 {
		queries = 20
	}

	rep := &ShardReport{}
	fmt.Fprintln(w, "Sharded fan-out vs a single collection (TNRA-CMHT, r=10)")
	fmt.Fprintf(w, "  shard-latency is the slowest shard per query (one core/host per shard);\n")
	fmt.Fprintf(w, "  fanout-wall is end-to-end on this host (GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "  %-7s %10s %14s %12s %10s %12s %9s\n",
		"shards", "build", "shard-latency", "fanout-wall", "verify", "queries/sec", "vo-bytes")
	for _, k := range []int{1, 2, 4, 8} {
		if k > len(docs) {
			continue
		}
		start := time.Now()
		set, err := shard.Build(docs, shard.Config{Engine: engine.DefaultConfig(signer), Shards: k})
		if err != nil {
			return nil, fmt.Errorf("experiments: %d shards: %w", k, err)
		}
		point := ShardPoint{Shards: k, Build: time.Since(start)}

		qs := workload.Synthetic(set.Col(0).Index(), queries, 3, int64(100+k))
		var voSum, critPath float64
		var fanout, verify time.Duration
		for _, q := range qs {
			start = time.Now()
			res, err := set.Search(q, 10, core.AlgoTNRA, core.SchemeCMHT)
			if err != nil {
				return nil, err
			}
			fanout += time.Since(start)
			var worst float64
			for _, sr := range res.PerShard {
				voSum += float64(len(sr.VO))
				if s := sr.Stats.ServerWall.Seconds(); s > worst {
					worst = s
				}
			}
			critPath += worst
			start = time.Now()
			if err := set.VerifyResult(q, 10, res); err != nil {
				return nil, fmt.Errorf("experiments: %d shards: %w", k, err)
			}
			verify += time.Since(start)
		}
		n := len(qs)
		point.ShardLatency = time.Duration(critPath / float64(n) * float64(time.Second))
		point.FanoutWall = fanout / time.Duration(n)
		point.Verify = verify / time.Duration(n)
		point.VOBytes = voSum / float64(n)

		// Throughput: concurrent clients hammering the same set.
		clients := runtime.GOMAXPROCS(0)
		start = time.Now()
		var wg sync.WaitGroup
		errs := make([]error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < queries; i++ {
					if _, err := set.Search(qs[(c+i)%len(qs)], 10, core.AlgoTNRA, core.SchemeCMHT); err != nil {
						errs[c] = err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		point.Throughput = float64(clients*queries) / time.Since(start).Seconds()

		rep.Points = append(rep.Points, point)
		fmt.Fprintf(w, "  %-7d %10v %14v %12v %10v %12.0f %9.0f\n",
			k, point.Build.Round(time.Millisecond), point.ShardLatency.Round(time.Microsecond),
			point.FanoutWall.Round(time.Microsecond), point.Verify.Round(time.Microsecond),
			point.Throughput, point.VOBytes)
	}
	return rep, nil
}
