package experiments

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"authtext"
	"authtext/internal/corpus"
	"authtext/internal/index"
	"authtext/internal/workload"
)

// The fleet experiment measures the replica fan-out deployment
// (docs/FLEET.md): one owner publishing generations into a snapshot
// directory, N replicas serving it behind a generation-consistent front
// end. Two quantities matter operationally and neither appears in the
// paper: aggregate query throughput as the fleet grows, and the
// swap-visibility lag — how long after the owner publishes generation
// G+1 a client behind the front end receives (and verifies) a G+1
// answer, with lagging replicas still in rotation the whole time.

// FleetPoint is one fleet size's measurement.
type FleetPoint struct {
	// Replicas is the number of backends in rotation.
	Replicas int `json:"replicas"`
	// Requests is how many searches the worker pool issued.
	Requests int `json:"requests"`
	// QPS is Requests over the measured wall time.
	QPS float64 `json:"qps"`
	// P50Millis is the median verified-search latency through the front
	// end (request to locally verified answer).
	P50Millis float64 `json:"p50_millis"`
	// SwapLagMillis is the time from the owner publishing a new
	// generation to the first verified answer of that generation arriving
	// through the front end.
	SwapLagMillis float64 `json:"swap_lag_millis"`
}

// FleetReport holds the fleet experiment's results (emitted as
// BENCH_fleet.json by `authbench -fig fleet -json`).
type FleetReport struct {
	Profile string       `json:"profile"`
	Workers int          `json:"workers"`
	Points  []FleetPoint `json:"points"`
}

// fleetWorkers is the client-side concurrency of the QPS measurement:
// enough in-flight requests that the power-of-two-choices balancer has
// load to spread, small enough for CI hardware.
const fleetWorkers = 8

// fleetReloadEvery is the replicas' snapshot-directory poll period — the
// experiment's stand-in for `authserved -watch`.
const fleetReloadEvery = 20 * time.Millisecond

// FleetCompare builds one RSA-signed live collection (replicas serve the
// manifest endpoint, which needs an exportable public key), persists its
// generations to a snapshot directory, and measures fleets of 1, 2 and 4
// replicas behind a front end. Every answer is verified client-side by
// the RemoteClient; a verification failure aborts the experiment.
func FleetCompare(p corpus.Profile, queries int, w io.Writer) (*FleetReport, error) {
	if queries < 1 {
		queries = 20
	}
	total := queries * 5
	if total < 50 {
		total = 50
	}

	idocs := corpus.Generate(p)
	docs := make([]authtext.Document, len(idocs))
	for i, d := range idocs {
		docs[i] = authtext.Document{Content: d.Content, Tokens: d.Tokens}
	}
	idx, err := index.Build(idocs, index.DefaultOptions())
	if err != nil {
		return nil, err
	}
	stream := workload.Synthetic(idx, queries, 3, 11)
	qs := make([]string, len(stream))
	for i, tokens := range stream {
		qs[i] = strings.Join(tokens, " ")
	}

	owner, _, err := authtext.NewLiveOwner(docs)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "authtext-fleet-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if _, err := owner.PersistGenerations(dir, nil); err != nil {
		return nil, err
	}

	rep := &FleetReport{Profile: p.Name, Workers: fleetWorkers}
	fmt.Fprintf(w, "Replica fleet behind a generation-consistent front end (TNRA-CMHT, r=10, %d workers)\n", fleetWorkers)
	fmt.Fprintf(w, "  %-9s %9s %10s %9s %14s\n", "replicas", "requests", "qps", "p50", "swap-lag")
	for _, n := range []int{1, 2, 4} {
		point, err := fleetPoint(owner, dir, qs, n, total)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, point)
		fmt.Fprintf(w, "  %-9d %9d %10.0f %8.2fms %12.1fms\n",
			point.Replicas, point.Requests, point.QPS, point.P50Millis, point.SwapLagMillis)
	}
	fmt.Fprintln(w, "  (swap lag: owner publishes G+1 → first verified G+1 answer through the front end)")
	return rep, nil
}

// fleetPoint measures one fleet size: n replicas freshly opened from the
// snapshot directory, each reloading on a timer, behind one front end.
func fleetPoint(owner *authtext.LiveOwner, dir string, qs []string, n, total int) (FleetPoint, error) {
	point := FleetPoint{Replicas: n, Requests: total}
	ctx := context.Background()

	stopReload := make(chan struct{})
	var reloaders sync.WaitGroup
	defer func() {
		close(stopReload)
		reloaders.Wait()
	}()

	urls := make([]string, n)
	for i := 0; i < n; i++ {
		replica, err := authtext.OpenLiveSnapshotDir(dir)
		if err != nil {
			return point, err
		}
		handler, err := authtext.NewLiveReplicaHTTPHandler(replica)
		if err != nil {
			return point, err
		}
		ts := httptest.NewServer(handler)
		defer ts.Close()
		urls[i] = ts.URL
		reloaders.Add(1)
		go func(r *authtext.LiveReplica) {
			defer reloaders.Done()
			tick := time.NewTicker(fleetReloadEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopReload:
					return
				case <-tick.C:
					// A transient scan error is the watcher's to retry; a
					// replica that cannot advance simply stays on its
					// generation and the front end routes around it.
					r.Reload()
				}
			}
		}(replica)
	}

	fe, err := authtext.NewFrontend(urls, authtext.WithFrontendProbeInterval(25*time.Millisecond))
	if err != nil {
		return point, err
	}
	defer fe.Close()
	fes := httptest.NewServer(fe)
	defer fes.Close()

	rc, err := authtext.NewRemoteClient(fes.URL)
	if err != nil {
		return point, err
	}
	// Warm pass: bootstrap the manifest and fault in every replica's
	// serving path before the clock starts.
	if _, err := rc.Search(ctx, qs[0], 10, authtext.TNRA, authtext.ChainMHT); err != nil {
		return point, fmt.Errorf("experiments: fleet warmup (%d replicas): %w", n, err)
	}

	lat := make([]time.Duration, total)
	errs := make([]error, fleetWorkers)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for wi := 0; wi < fleetWorkers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				q := qs[i%len(qs)]
				qstart := time.Now()
				if _, err := rc.Search(ctx, q, 10, authtext.TNRA, authtext.ChainMHT); err != nil {
					errs[wi] = fmt.Errorf("experiments: fleet search %q (%d replicas): %w", q, n, err)
					next.Store(int64(total))
					return
				}
				lat[i] = time.Since(qstart)
			}
		}(wi)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return point, err
		}
	}
	point.QPS = float64(total) / wall.Seconds()
	point.P50Millis = float64(median(lat)) / float64(time.Millisecond)

	// Swap visibility: publish a generation and poll through the front
	// end until a verified answer of the new generation comes back. The
	// replicas pick the snapshot up on their reload timers and the front
	// end's watermark forbids serving the old generation once any of them
	// has; the measured lag covers that whole pipeline. The clock starts
	// AFTER AddDocuments returns — the persist hook has written the
	// snapshot by then — so the number is the fleet's propagation lag,
	// not the owner's rebuild cost (which can spike ~20x on the rare
	// avg-length re-pin rebuild; see internal/live's maxAvgLenDrift).
	if _, _, err := owner.AddDocuments([]authtext.Document{
		{Content: fmt.Appendf(nil, "fleet swap probe document for fleet of %d", n)},
	}); err != nil {
		return point, err
	}
	swapStart := time.Now()
	target := owner.Generation()
	deadline := time.Now().Add(15 * time.Second)
	for {
		res, err := rc.Search(ctx, qs[0], 10, authtext.TNRA, authtext.ChainMHT)
		if err == nil && res.Generation >= target {
			point.SwapLagMillis = float64(time.Since(swapStart)) / float64(time.Millisecond)
			break
		}
		if err != nil && authtext.IsTampered(err) {
			return point, fmt.Errorf("experiments: fleet swap poll (%d replicas): %w", n, err)
		}
		if time.Now().After(deadline) {
			return point, fmt.Errorf("experiments: fleet of %d never surfaced generation %d", n, target)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return point, nil
}
