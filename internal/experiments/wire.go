package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"authtext"
	"authtext/internal/httpapi"
	"authtext/internal/snapshot"
	"authtext/internal/wire"
	"authtext/internal/workload"
)

// The wire experiment measures the raw-speed data path this library's
// HTTP protocol offers beyond the paper: the negotiated binary framing
// of /v1 responses (docs/PROTOCOL.md "Binary framing") against the
// default JSON, and the memory-mapped zero-copy snapshot open
// (docs/SNAPSHOT.md "Mapped opens") against the copying open. Queries are
// served hot (VO cache warmed first), so the latency split isolates the
// transport path — encode, transfer, decode — which is exactly what the
// framing changes; the engine cost under a cache miss is identical on
// both content types by construction.

// WireReport holds the binary-vs-JSON and mapped-vs-copy comparison
// (emitted as BENCH_wire.json by `authbench -fig wire -json`).
type WireReport struct {
	Profile string `json:"profile"`
	Queries int    `json:"queries"`
	Rounds  int    `json:"rounds"`
	R       int    `json:"r"`

	// Response bytes over the measured rounds, by content type.
	JSONBytes  int64   `json:"json_bytes_total"`
	FrameBytes int64   `json:"frame_bytes_total"`
	ByteRatio  float64 `json:"byte_ratio"` // JSON / frame

	// Transport-path p50 (request start to decoded response), hot cache,
	// over a link modeled at LinkMbps.
	LinkMbps       int     `json:"link_mbps"`
	JSONP50Millis  float64 `json:"json_p50_millis"`
	FrameP50Millis float64 `json:"frame_p50_millis"`
	LatencyRatio   float64 `json:"latency_ratio"` // JSON p50 / frame p50

	// Snapshot open comparison over the same artifact (best of openRounds
	// each).
	SnapshotBytes    int64   `json:"snapshot_bytes"`
	OpenCopyMillis   float64 `json:"open_copy_millis"`
	OpenMappedMillis float64 `json:"open_mapped_millis"`
	OpenSpeedup      float64 `json:"open_speedup"` // copy / mapped
}

// wireRounds is how many measured passes each content type gets per query
// (after one warm pass that populates the VO cache).
const wireRounds = 3

// wireLinkMbps models the replica link. Loopback moves bytes for free,
// which would measure only the encoders' CPU and none of the transfer a
// remote client actually waits for; shaping the connection to a fixed
// bandwidth (a conservative inter-site link) makes "remote-search
// latency" mean what it says. The modeled rate is part of the report.
const wireLinkMbps = 200

// openRounds is how many timed opens of each flavour the comparison runs,
// keeping the minimum. The copying open's baseline is dominated by
// allocation and decode work whose wall time swings widely under CPU
// contention; best-of-N with a generous N reports the uncontended cost of
// each path rather than the noise of the machine running the benchmark.
const openRounds = 5

// shapedConn meters bytes through a net.Conn at a fixed bandwidth by
// accumulating transfer debt and sleeping it off once it exceeds the
// timer granularity. Reads and writes share one budget, like a duplex
// link's serialisation delay.
type shapedConn struct {
	net.Conn
	mu   sync.Mutex
	debt time.Duration
}

// charge adds n bytes of serialisation delay, sleeping whenever the
// accumulated debt is large enough for time.Sleep to be accurate.
func (c *shapedConn) charge(n int) {
	c.mu.Lock()
	c.debt += time.Duration(float64(n) * 8 / wireLinkMbps * 1e3 * float64(time.Nanosecond))
	d := c.debt
	if d < 200*time.Microsecond {
		c.mu.Unlock()
		return
	}
	c.debt = 0
	c.mu.Unlock()
	time.Sleep(d)
}

func (c *shapedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.charge(n)
	return n, err
}

func (c *shapedConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.charge(n)
	return n, err
}

// shapedListener wraps every accepted connection in a shapedConn.
type shapedListener struct{ net.Listener }

func (l shapedListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &shapedConn{Conn: c}, nil
}

// WireCompare runs the comparison on the fixture's collection.
func WireCompare(f *Fixture, opts Options, w io.Writer) (*WireReport, error) {
	// r=80 is the delivery-heavy end of the paper's result-size sweep
	// (Fig 15): content-bearing responses are where the wire format is the
	// bill, rather than the HTTP round-trip's fixed cost.
	rep := &WireReport{Profile: f.Profile.Name, Rounds: wireRounds, R: 80, LinkMbps: wireLinkMbps}

	// One snapshot artifact serves both halves of the experiment: the
	// serving halves of the HTTP comparison, and the open-cost comparison.
	dir, err := os.MkdirTemp("", "authtext-wire-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "wire.atsn")
	sf, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := snapshot.Write(sf, f.Col); err != nil {
		sf.Close()
		return nil, err
	}
	if err := sf.Close(); err != nil {
		return nil, err
	}
	if info, err := os.Stat(path); err == nil {
		rep.SnapshotBytes = info.Size()
	}

	// Open-cost comparison: best of openRounds so one cold page-cache pass
	// (or a contended scheduler slice) does not decide the verdict. The
	// first copying open warms the cache for everyone, which is the fair
	// setup — the mapped open's win is the avoided copy, not an avoided
	// disk read.
	var srv *authtext.Server
	var client *authtext.Client
	for i := 0; i < openRounds; i++ {
		// One iteration's garbage is not the next one's bill: a copying
		// open strands hundreds of MB that would otherwise trigger a GC
		// cycle inside a later timed region.
		runtime.GC()
		start := time.Now()
		s, c, err := authtext.OpenSnapshotFile(path)
		if err != nil {
			return nil, err
		}
		if ms := float64(time.Since(start)) / float64(time.Millisecond); rep.OpenCopyMillis == 0 || ms < rep.OpenCopyMillis {
			rep.OpenCopyMillis = ms
		}
		srv, client = s, c
	}
	for i := 0; i < openRounds; i++ {
		runtime.GC()
		start := time.Now()
		ms, err := authtext.OpenSnapshotMapped(path)
		if err != nil {
			return nil, err
		}
		if m := float64(time.Since(start)) / float64(time.Millisecond); rep.OpenMappedMillis == 0 || m < rep.OpenMappedMillis {
			rep.OpenMappedMillis = m
		}
		// Drain the deferred validator (untimed) so its scan does not
		// contend with the next iteration's timed open. Time-to-serving is
		// the open; the background CRC is by design off that path.
		if err := ms.Validate(); err != nil {
			ms.Close()
			return nil, err
		}
		if i == 0 {
			// Prove the mapped collection is genuinely serviceable (and
			// intact) before trusting its timing: answer and verify one
			// query, and wait out the deferred store checksum.
			q := strings.Join(workload.Synthetic(f.Col.Index(), 1, 3, 7)[0], " ")
			res, err := ms.Server().Search(q, 10, authtext.TNRA, authtext.ChainMHT)
			if err != nil {
				ms.Close()
				return nil, fmt.Errorf("experiments: mapped snapshot search: %w", err)
			}
			if err := ms.Client().Verify(q, 10, res); err != nil {
				ms.Close()
				return nil, fmt.Errorf("experiments: mapped snapshot answer failed verification: %w", err)
			}
		}
		ms.Close()
	}
	if rep.OpenMappedMillis > 0 {
		rep.OpenSpeedup = rep.OpenCopyMillis / rep.OpenMappedMillis
	}

	// HTTP comparison: one server, hot VO cache, raw requests per content
	// type so the measured path is exactly what a remote client pays —
	// encode, transfer over the modeled link, decode.
	handler := authtext.NewHTTPHandler(srv, nil, authtext.WithVOCache(authtext.NewVOCache(256<<20)))
	ts := httptest.NewUnstartedServer(handler)
	ts.Listener = shapedListener{ts.Listener}
	ts.Start()
	defer ts.Close()
	hc := ts.Client()

	nq := opts.Queries
	if nq > 100 {
		nq = 100
	}
	queries := workload.TRECLike(f.Col.Index(), nq, opts.Seed)
	rep.Queries = len(queries)
	bodies := make([][]byte, len(queries))
	for i, tokens := range queries {
		b, err := json.Marshal(&httpapi.SearchRequest{
			Query: strings.Join(tokens, " "), R: rep.R,
			Algo: httpapi.AlgoTNRA, Scheme: httpapi.SchemeCMHT,
		})
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	// Warm pass: populate the cache and cross-check that both encodings
	// carry the same answer.
	for i, body := range bodies {
		jr, _, err := wireFetch(hc, ts.URL, body, false)
		if err != nil {
			return nil, err
		}
		fr, _, err := wireFetch(hc, ts.URL, body, true)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(jr.VO, fr.VO) || len(jr.Hits) != len(fr.Hits) {
			return nil, fmt.Errorf("experiments: query %d: binary and JSON answers disagree", i)
		}
		res := &authtext.SearchResult{VO: fr.VO, Generation: fr.Generation,
			Hits: make([]authtext.Hit, len(fr.Hits))}
		for j, h := range fr.Hits {
			res.Hits[j] = authtext.Hit{DocID: h.DocID, Score: h.Score, Content: h.Content}
		}
		if err := client.Verify(strings.Join(queries[i], " "), rep.R, res); err != nil {
			return nil, fmt.Errorf("experiments: binary-framed answer failed verification: %w", err)
		}
	}

	var jsonLat, frameLat []time.Duration
	for round := 0; round < wireRounds; round++ {
		for _, body := range bodies {
			start := time.Now()
			_, n, err := wireFetch(hc, ts.URL, body, false)
			if err != nil {
				return nil, err
			}
			jsonLat = append(jsonLat, time.Since(start))
			rep.JSONBytes += int64(n)

			start = time.Now()
			_, n, err = wireFetch(hc, ts.URL, body, true)
			if err != nil {
				return nil, err
			}
			frameLat = append(frameLat, time.Since(start))
			rep.FrameBytes += int64(n)
		}
	}
	rep.JSONP50Millis = float64(median(jsonLat)) / float64(time.Millisecond)
	rep.FrameP50Millis = float64(median(frameLat)) / float64(time.Millisecond)
	if rep.FrameBytes > 0 {
		rep.ByteRatio = float64(rep.JSONBytes) / float64(rep.FrameBytes)
	}
	if rep.FrameP50Millis > 0 {
		rep.LatencyRatio = rep.JSONP50Millis / rep.FrameP50Millis
	}

	fmt.Fprintf(w, "Binary wire protocol vs JSON (hot-query transport path, TNRA-CMHT, r=%d)\n", rep.R)
	fmt.Fprintf(w, "  queries: %d × %d rounds\n", rep.Queries, rep.Rounds)
	fmt.Fprintf(w, "  response bytes:  JSON %.1f MB, binary %.1f MB  (%.2fx smaller)\n",
		mb(rep.JSONBytes), mb(rep.FrameBytes), rep.ByteRatio)
	fmt.Fprintf(w, "  transport p50:   JSON %.3f ms, binary %.3f ms  (%.2fx faster, %d Mb/s modeled link)\n",
		rep.JSONP50Millis, rep.FrameP50Millis, rep.LatencyRatio, rep.LinkMbps)
	fmt.Fprintf(w, "Snapshot open: copying vs memory-mapped (best of %d)\n", openRounds)
	fmt.Fprintf(w, "  artifact: %.1f MB\n", mb(rep.SnapshotBytes))
	fmt.Fprintf(w, "  copy %.1f ms, mapped %.1f ms  (%.1fx faster)\n",
		rep.OpenCopyMillis, rep.OpenMappedMillis, rep.OpenSpeedup)
	return rep, nil
}

// wireFetch posts one search and decodes the response in the requested
// encoding, returning the decoded answer and the raw body size.
func wireFetch(hc *http.Client, base string, body []byte, binary bool) (*httpapi.SearchResponse, int, error) {
	req, err := http.NewRequest(http.MethodPost, base+httpapi.PathSearch, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if binary {
		req.Header.Set("Accept", wire.ContentType)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("experiments: wire fetch: status %d: %s", resp.StatusCode, raw)
	}
	if binary {
		if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
			return nil, 0, fmt.Errorf("experiments: wire fetch: negotiated binary, server answered %q", ct)
		}
		sr, err := wire.DecodeSearchResponse(raw)
		if err != nil {
			return nil, 0, err
		}
		return sr, len(raw), nil
	}
	var sr httpapi.SearchResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		return nil, 0, err
	}
	return &sr, len(raw), nil
}
