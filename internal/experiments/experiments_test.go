package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"authtext/internal/core"
	"authtext/internal/corpus"
	"authtext/internal/engine"
	"authtext/internal/sig"
	"authtext/internal/workload"
)

var (
	fixtureOnce sync.Once
	fixture     *Fixture
	fixtureErr  error
)

func tinyFixture(t *testing.T) *Fixture {
	t.Helper()
	fixtureOnce.Do(func() {
		fixture, fixtureErr = NewFixture(corpus.Tiny(), false)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixture
}

func tinyOptions() Options {
	return Options{
		Queries: 5,
		QSizes:  []int{2, 5},
		RValues: []int{5, 10},
		Seed:    7,
	}
}

func TestFig4(t *testing.T) {
	f := tinyFixture(t)
	var buf bytes.Buffer
	d := Fig4(f, &buf)
	if d.Terms == 0 || d.MaxLen == 0 {
		t.Fatalf("degenerate distribution: %+v", d)
	}
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Fatal("missing header")
	}
}

func TestFig13Smoke(t *testing.T) {
	f := tinyFixture(t)
	var buf bytes.Buffer
	res, err := Fig13(f, tinyOptions(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.X) != 2 || len(res.Points) != 2 {
		t.Fatalf("sweep shape: %+v", res.X)
	}
	// Larger queries read at least as many entries in total; check the
	// baseline column exists and is positive.
	for _, p := range res.Points {
		for _, v := range Variants {
			m := p[v]
			if m.EntriesPerTerm <= 0 || m.VOKB <= 0 || m.ListLen <= 0 {
				t.Fatalf("%v: empty metrics %+v", v, m)
			}
			if m.EntriesPerTerm > m.ListLen+1e-9 {
				t.Fatalf("%v read more entries than the lists hold", v)
			}
		}
	}
	out := buf.String()
	for _, panel := range []string{"(a)", "(b)", "(c)", "(d)", "(e)"} {
		if !strings.Contains(out, panel) {
			t.Fatalf("missing panel %s", panel)
		}
	}
}

func TestFig14Smoke(t *testing.T) {
	f := tinyFixture(t)
	var buf bytes.Buffer
	res, err := Fig14(f, tinyOptions(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Costs must not shrink as r grows.
	for _, v := range Variants {
		if res.Points[1][v].EntriesPerTerm+1e-9 < res.Points[0][v].EntriesPerTerm {
			t.Fatalf("%v: entries read shrank with larger r", v)
		}
	}
}

func TestFig15Smoke(t *testing.T) {
	f := tinyFixture(t)
	var buf bytes.Buffer
	res, err := Fig15(f, tinyOptions(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatal("sweep shape")
	}
}

func TestTable2Smoke(t *testing.T) {
	f := tinyFixture(t)
	var buf bytes.Buffer
	res, err := Table2(f, tinyOptions(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	// CMHT's buddy inclusion must shift VO composition toward data
	// relative to MHT (Table 2's finding), comparing the same sweep point.
	mht := res.Points[0][Variant{core.AlgoTRA, core.SchemeMHT}]
	cmht := res.Points[0][Variant{core.AlgoTRA, core.SchemeCMHT}]
	dMHT, _ := share(mht.VOData, mht.VODigest)
	dCMHT, _ := share(cmht.VOData, cmht.VODigest)
	if dCMHT < dMHT {
		t.Fatalf("CMHT data share %.1f%% below MHT %.1f%%", dCMHT, dMHT)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("missing header")
	}
}

func TestSpaceReport(t *testing.T) {
	f := tinyFixture(t)
	var buf bytes.Buffer
	over := SpaceReport(f, &buf)
	if over["TRA-MHT"] <= over["TNRA-MHT"] {
		t.Fatalf("TRA overhead (%.2f%%) must exceed TNRA (%.2f%%): doc records dominate",
			over["TRA-MHT"], over["TNRA-MHT"])
	}
	for v, pct := range over {
		if pct <= 0 {
			t.Fatalf("%s overhead %.2f%% not positive", v, pct)
		}
	}
}

func TestHeadlineSmoke(t *testing.T) {
	f := tinyFixture(t)
	var buf bytes.Buffer
	h, err := Headline(f, tinyOptions(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if h["synthetic"].VOKB <= 0 || h["trec"].VOKB <= 0 {
		t.Fatalf("degenerate headline: %+v", h)
	}
}

// TestShapeTNRACMHTWins asserts the paper's §4.5 conclusion at test scale:
// TNRA-CMHT beats TRA variants on I/O and VO size, and beats TNRA-MHT on
// I/O.
func TestShapeTNRACMHTWins(t *testing.T) {
	f := tinyFixture(t)
	var buf bytes.Buffer
	opts := tinyOptions()
	opts.Queries = 10
	opts.QSizes = []int{3}
	res, err := Fig13(f, opts, &buf)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	winner := p[Variant{core.AlgoTNRA, core.SchemeCMHT}]
	traMHT := p[Variant{core.AlgoTRA, core.SchemeMHT}]
	tnraMHT := p[Variant{core.AlgoTNRA, core.SchemeMHT}]
	if winner.IOMillis > traMHT.IOMillis {
		t.Fatalf("TNRA-CMHT I/O %.2f ms not below TRA-MHT %.2f ms", winner.IOMillis, traMHT.IOMillis)
	}
	if winner.IOMillis > tnraMHT.IOMillis {
		t.Fatalf("TNRA-CMHT I/O %.2f ms not below TNRA-MHT %.2f ms", winner.IOMillis, tnraMHT.IOMillis)
	}
	if winner.VOKB > traMHT.VOKB {
		t.Fatalf("TNRA-CMHT VO %.2f KB not below TRA-MHT %.2f KB", winner.VOKB, traMHT.VOKB)
	}
}

// TestTable2ProgressionWithQuerySize asserts Table 2's trend: the data
// share of TRA VOs grows with query size under both schemes (more terms →
// more revealed leaves relative to shared digests).
func TestTable2ProgressionWithQuerySize(t *testing.T) {
	f := tinyFixture(t)
	opts := tinyOptions()
	opts.QSizes = []int{2, 8}
	opts.Queries = 15
	res, err := Table2(f, opts, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []core.Scheme{core.SchemeMHT, core.SchemeCMHT} {
		v := Variant{Algo: core.AlgoTRA, Scheme: scheme}
		small := res.Points[0][v]
		large := res.Points[1][v]
		dSmall, _ := share(small.VOData, small.VODigest)
		dLarge, _ := share(large.VOData, large.VODigest)
		if dLarge+2 < dSmall { // small tolerance for workload noise
			t.Fatalf("%v: data share fell from %.1f%% to %.1f%% as q grew", v, dSmall, dLarge)
		}
	}
}

// TestBoostedFixtureRunsThroughHarness exercises the experiment runner on a
// boosted collection: every variant must still verify.
func TestBoostedFixtureRunsThroughHarness(t *testing.T) {
	signer, err := sig.NewHMACSigner([]byte("boost-harness"), 128)
	if err != nil {
		t.Fatal(err)
	}
	docs := corpus.Generate(corpus.Tiny())
	authority := make([]float64, len(docs))
	for i := range authority {
		authority[i] = float64(i%10) / 10
	}
	cfg := engine.DefaultConfig(signer)
	cfg.Authority = authority
	cfg.Beta = 1.0
	col, err := engine.BuildCollection(docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.Synthetic(col.Index(), 5, 3, 3)
	if _, err := RunPoint(col, queries, 5); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotCompare(t *testing.T) {
	f := tinyFixture(t)
	var buf bytes.Buffer
	rep, err := SnapshotCompare(f, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SizeBytes == 0 || rep.Open <= 0 || rep.Write <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatal("missing speedup line")
	}
}

func TestShardCompare(t *testing.T) {
	var buf bytes.Buffer
	rep, err := ShardCompare(corpus.Tiny(), 5, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("%d points, want 4 (1/2/4/8 shards)", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Build <= 0 || p.ShardLatency <= 0 || p.FanoutWall <= 0 || p.Throughput <= 0 || p.VOBytes <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
	}
	// The whole purpose of sharding: per-shard critical-path latency must
	// shrink as shards multiply.
	if rep.Points[3].ShardLatency >= rep.Points[0].ShardLatency {
		t.Errorf("8-shard latency %v not below single-shard %v",
			rep.Points[3].ShardLatency, rep.Points[0].ShardLatency)
	}
	if !strings.Contains(buf.String(), "shard-latency") {
		t.Fatal("missing table header")
	}
}

func TestCacheCompare(t *testing.T) {
	var buf bytes.Buffer
	rep, err := CacheCompare(corpus.Tiny(), 5, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 6 {
		t.Fatalf("%d points, want 6 (3 skews x 2 update rates)", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.HitRate <= 0 || p.HitRate >= 1 {
			t.Fatalf("implausible hit rate: %+v", p)
		}
		if p.MedianHit <= 0 || p.MedianMiss <= 0 || p.MedianUncached <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
		// The acceptance bar of the cache experiment: repeat queries must be
		// dramatically cheaper than uncached serving.
		if p.Speedup < 5 {
			t.Errorf("zipf=%.1f upd=%d: speedup %.1fx below 5x", p.ZipfS, p.UpdatesPer1000, p.Speedup)
		}
	}
	// Updates cost hit rate: at equal skew, the updating run must not beat
	// the static one.
	for i := 0; i+1 < len(rep.Points); i += 2 {
		if rep.Points[i+1].HitRate > rep.Points[i].HitRate {
			t.Errorf("zipf=%.1f: hit rate rose under updates (%.2f > %.2f)",
				rep.Points[i].ZipfS, rep.Points[i+1].HitRate, rep.Points[i].HitRate)
		}
	}
	if !strings.Contains(buf.String(), "hit-rate") {
		t.Fatal("missing table header")
	}
}
