package vocache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutRoundTrip(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("absent"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("k1", 3, 100, "v1")
	v, ok := c.Get("k1")
	if !ok || v.(string) != "v1" {
		t.Fatalf("got %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("stats %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", st.HitRate())
	}
	// Replacement updates the value and the byte accounting.
	c.Put("k1", 4, 40, "v2")
	if v, _ := c.Get("k1"); v.(string) != "v2" {
		t.Fatalf("replacement lost: %v", v)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 40 {
		t.Fatalf("post-replace stats %+v", st)
	}
}

func TestLRUEvictionRespectsByteBudget(t *testing.T) {
	c := New(1) // rounds up to the per-shard minimum
	perShard := c.Stats().CapacityBytes / DefaultShards
	// All keys land on distinct-or-same shards; drive ONE shard over budget
	// by reusing a single key prefix until its shard exceeds its cap.
	cost := perShard / 3
	var keys []string
	for i := 0; i < 64; i++ {
		keys = append(keys, fmt.Sprintf("key-%d", i))
		c.Put(keys[i], 1, cost, i)
	}
	st := c.Stats()
	if st.Bytes > st.CapacityBytes {
		t.Fatalf("cache over budget: %d > %d", st.Bytes, st.CapacityBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}
	// Recently used entries survive longer than old ones on their shard:
	// at least the most recent Put must still be present.
	if _, ok := c.Get(keys[len(keys)-1]); !ok {
		t.Fatal("most recent entry evicted")
	}
}

func TestOversizedEntryNotCached(t *testing.T) {
	c := New(1)
	per := c.Stats().CapacityBytes / DefaultShards
	c.Put("huge", 1, per+1, "x")
	if _, ok := c.Get("huge"); ok {
		t.Fatal("entry larger than a shard budget was cached")
	}
}

func TestDropBelowRemovesOldGenerations(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("old-%d", i), 1, 10, i)
		c.Put(fmt.Sprintf("new-%d", i), 2, 10, i)
	}
	if n := c.DropBelow(2); n != 10 {
		t.Fatalf("dropped %d entries, want 10", n)
	}
	st := c.Stats()
	if st.Entries != 10 || st.Invalidations != 10 {
		t.Fatalf("stats %+v", st)
	}
	if _, ok := c.Get("old-3"); ok {
		t.Fatal("old-generation entry survived DropBelow")
	}
	if _, ok := c.Get("new-3"); !ok {
		t.Fatal("current-generation entry dropped")
	}
}

func TestRangeVisitsEntries(t *testing.T) {
	c := New(1 << 20)
	c.Put("a", 1, 5, "x")
	c.Put("b", 2, 5, "y")
	seen := map[string]uint64{}
	c.Range(func(key string, gen uint64, val any) bool {
		seen[key] = gen
		return true
	})
	if len(seen) != 2 || seen["a"] != 1 || seen["b"] != 2 {
		t.Fatalf("range saw %v", seen)
	}
}

// Concurrent hammer: 8 writers and 8 readers on overlapping keys, run
// under -race in CI.
func TestConcurrentGetPut(t *testing.T) {
	c := New(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Put(fmt.Sprintf("k-%d", (g+i)%32), uint64(i), 64, i)
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Get(fmt.Sprintf("k-%d", (g*3+i)%32))
				if i%50 == 0 {
					c.DropBelow(uint64(i / 2))
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > st.CapacityBytes {
		t.Fatalf("over budget after hammer: %+v", st)
	}
}
