// Package vocache is a sharded, byte-bounded LRU cache for encoded
// verification objects and the responses built around them.
//
// A collection generation is immutable, so the answer to (query terms, r,
// algorithm, scheme, generation) is a pure function — caching it server-side
// is safe exactly because the client verifies the bytes, not the server's
// honesty: a stale or corrupted entry fails verification (or classifies as
// ErrStaleGeneration) instead of being silently trusted. The generation is
// therefore part of every key: a document update bumps the generation, new
// queries build new keys, and entries of dead generations simply stop
// matching — invalidation without any hot-path eviction logic. DropBelow
// exists only as memory hygiene for the update path.
//
// The cache is safe for concurrent use. Keys are hashed onto independently
// locked shards so that a hot serve path contends on 1/shards of the map;
// each shard bounds its own byte budget and evicts least-recently-used
// entries when a Put overflows it.
package vocache

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count used by New.
const DefaultShards = 16

// Cache is a sharded LRU bounded by the summed Cost of its entries.
type Cache struct {
	shards []cacheShard
	seed   maphash.Seed
	cap    int64

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Entries and Bytes describe the current population; CapacityBytes is
	// the configured bound.
	Entries       int64
	Bytes         int64
	CapacityBytes int64
	// Hits and Misses count Get outcomes; Evictions counts entries dropped
	// by the LRU bound, Invalidations entries dropped by DropBelow.
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
}

// HitRate returns Hits/(Hits+Misses), 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type cacheShard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	bytes int64
	cap   int64
}

type entry struct {
	key  string
	gen  uint64
	cost int64
	val  any
}

// New returns a cache bounded by maxBytes across DefaultShards shards.
// maxBytes below one block per shard is rounded up so that every shard can
// hold at least one typical entry.
func New(maxBytes int64) *Cache {
	const minPerShard = 64 << 10
	perShard := maxBytes / DefaultShards
	if perShard < minPerShard {
		perShard = minPerShard
	}
	c := &Cache{
		shards: make([]cacheShard, DefaultShards),
		seed:   maphash.MakeSeed(),
		cap:    perShard * DefaultShards,
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{ll: list.New(), items: make(map[string]*list.Element), cap: perShard}
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// Get returns the cached value for key, promoting it to most recently
// used. The cache never copies values: callers must treat what they get
// back as immutable.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.ll.MoveToFront(el)
	v := el.Value.(*entry).val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores val under key with the given byte cost and generation stamp,
// evicting least-recently-used entries until the shard budget holds. An
// entry whose cost alone exceeds the shard budget is not cached. Putting
// an existing key replaces its value.
func (c *Cache) Put(key string, gen uint64, cost int64, val any) {
	if cost < 0 {
		return
	}
	s := c.shard(key)
	if cost > s.cap {
		return
	}
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry)
		s.bytes += cost - e.cost
		e.gen, e.cost, e.val = gen, cost, val
		s.ll.MoveToFront(el)
	} else {
		s.items[key] = s.ll.PushFront(&entry{key: key, gen: gen, cost: cost, val: val})
		s.bytes += cost
	}
	var evicted int64
	for s.bytes > s.cap {
		back := s.ll.Back()
		if back == nil {
			break
		}
		s.removeLocked(back)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// removeLocked unlinks one element (caller holds s.mu).
func (s *cacheShard) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.items, e.key)
	s.bytes -= e.cost
}

// DropBelow removes every entry whose generation stamp is below gen and
// reports how many were dropped. Correctness never needs it — dead
// generations can no longer be looked up, because the generation is part
// of the key — it only returns their memory ahead of LRU aging. Callers
// invoke it from the (already expensive) update path, never per query.
func (c *Cache) DropBelow(gen uint64) int {
	var dropped int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; {
			next := el.Next()
			if el.Value.(*entry).gen < gen {
				s.removeLocked(el)
				dropped++
			}
			el = next
		}
		s.mu.Unlock()
	}
	if dropped > 0 {
		c.invalidations.Add(dropped)
	}
	return int(dropped)
}

// Range calls fn for every cached entry until fn returns false. The value
// passed to fn is the stored one, not a copy — tests use this to poison
// entries in place; production code must not mutate through it. Each shard
// is locked only while its own entries are visited.
func (c *Cache) Range(fn func(key string, gen uint64, val any) bool) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			if !fn(e.key, e.gen, e.val) {
				s.mu.Unlock()
				return
			}
		}
		s.mu.Unlock()
	}
}

// Stats snapshots the counters. Entries and Bytes are summed across shards
// under their locks; the monotonic counters are atomic reads.
func (c *Cache) Stats() Stats {
	st := Stats{
		CapacityBytes: c.cap,
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += int64(len(s.items))
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
