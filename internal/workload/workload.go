// Package workload generates the two query workloads of §4.1:
//
//   - Synthetic: fixed-size queries of terms drawn uniformly at random from
//     the dictionary (resembling short Web queries, §4.5).
//   - TREC-like: verbose queries of 2–20 terms mixing document-frequency-
//     biased terms (common words hitting long inverted lists) with uniform
//     ones, reproducing the two properties of the TREC-2/3 ad-hoc topics
//     that drive Fig 15 (DESIGN.md §3.2 documents the substitution).
//
// Beyond the paper, Zipfian produces the repeat-heavy streams of
// production traffic: a fixed pool of distinct queries replayed with
// Zipf-distributed popularity (the same rand.Zipf machinery
// internal/corpus uses for term frequencies), which is the workload the
// server-side VO cache is sized against.
package workload

import (
	"math/rand"
	"sort"

	"authtext/internal/index"
)

// Synthetic returns count queries of exactly qsize distinct dictionary
// terms drawn uniformly at random.
func Synthetic(idx *index.Index, count, qsize int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	m := idx.M()
	if qsize > m {
		qsize = m
	}
	out := make([][]string, count)
	for i := range out {
		seen := make(map[int]struct{}, qsize)
		q := make([]string, 0, qsize)
		for len(q) < qsize {
			t := rng.Intn(m)
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			q = append(q, idx.Name(index.TermID(t)))
		}
		out[i] = q
	}
	return out
}

// ZipfRanks returns count pool indices in [0, poolSize) drawn from a Zipf
// law with exponent s (must be > 1; larger s = heavier head). Rank 0 is the
// most popular. Callers that already have a pool of queries (or anything
// else) use the ranks to replay it with production-shaped repetition.
func ZipfRanks(count, poolSize int, s float64, seed int64) []int {
	if poolSize < 1 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, s, 1, uint64(poolSize-1))
	out := make([]int, count)
	for i := range out {
		out[i] = int(zipf.Uint64())
	}
	return out
}

// Zipfian returns a repeat-heavy stream of count queries: a pool of
// poolSize distinct qsize-term queries (drawn like Synthetic) replayed
// with Zipf(s)-distributed popularity. Entries of the returned stream
// alias pool queries, so repeats are pointer-identical — exactly what a
// query cache sees from head-skewed traffic.
func Zipfian(idx *index.Index, count, poolSize, qsize int, s float64, seed int64) [][]string {
	pool := Synthetic(idx, poolSize, qsize, seed)
	ranks := ZipfRanks(count, len(pool), s, seed+1)
	out := make([][]string, count)
	for i, r := range ranks {
		out[i] = pool[r]
	}
	return out
}

// TRECLike returns count verbose queries. Lengths are drawn from 2–20
// (centre-weighted, like topics 101–200); with probability commonBias each
// term comes from the top decile of document frequencies, so that longer
// queries hit several long inverted lists — the defining property of the
// TREC workload in §4.4.
func TRECLike(idx *index.Index, count int, seed int64) [][]string {
	const commonBias = 0.4
	rng := rand.New(rand.NewSource(seed))
	m := idx.M()

	// Terms sorted by descending document frequency; the top decile are
	// the "common words".
	byDF := make([]int, m)
	for i := range byDF {
		byDF[i] = i
	}
	sort.Slice(byDF, func(a, b int) bool {
		return idx.FT(index.TermID(byDF[a])) > idx.FT(index.TermID(byDF[b]))
	})
	topDecile := m / 10
	if topDecile < 1 {
		topDecile = 1
	}

	out := make([][]string, count)
	for i := range out {
		// Triangular length distribution over [2, 20] with mode ≈ 8.
		qsize := 2 + int(float64(18)*triangular(rng, 6.0/18.0))
		if qsize > m {
			qsize = m
		}
		seen := make(map[int]struct{}, qsize)
		q := make([]string, 0, qsize)
		for len(q) < qsize && len(seen) < m {
			var t int
			if rng.Float64() < commonBias {
				t = byDF[rng.Intn(topDecile)]
			} else {
				t = rng.Intn(m)
			}
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			q = append(q, idx.Name(index.TermID(t)))
		}
		out[i] = q
	}
	return out
}

// triangular samples a triangular distribution on [0, 1) with the given
// mode.
func triangular(rng *rand.Rand, mode float64) float64 {
	u := rng.Float64()
	if u < mode {
		return sqrtApprox(u * mode)
	}
	return 1 - sqrtApprox((1-u)*(1-mode))
}

func sqrtApprox(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations suffice here and avoid importing math for one call.
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}
