package workload

import (
	"math"
	"testing"

	"authtext/internal/corpus"
	"authtext/internal/index"
)

func buildIdx(t *testing.T) *index.Index {
	t.Helper()
	idx, err := index.Build(corpus.Generate(corpus.Tiny()), index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestSyntheticShape(t *testing.T) {
	idx := buildIdx(t)
	qs := Synthetic(idx, 50, 3, 1)
	if len(qs) != 50 {
		t.Fatalf("%d queries, want 50", len(qs))
	}
	for _, q := range qs {
		if len(q) != 3 {
			t.Fatalf("query size %d, want 3", len(q))
		}
		seen := map[string]bool{}
		for _, tok := range q {
			if seen[tok] {
				t.Fatalf("duplicate term in query %v", q)
			}
			seen[tok] = true
			if _, ok := idx.Lookup(tok); !ok {
				t.Fatalf("term %q not in dictionary", tok)
			}
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	idx := buildIdx(t)
	a := Synthetic(idx, 10, 4, 7)
	b := Synthetic(idx, 10, 4, 7)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestTRECLikeProperties(t *testing.T) {
	idx := buildIdx(t)
	qs := TRECLike(idx, 200, 3)
	var totalLen float64
	hitsLong := 0
	// "Long list" threshold: top decile by document frequency.
	lens := idx.ListLengths()
	sorted := append([]int{}, lens...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] < sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	longCut := sorted[len(sorted)/10]
	for _, q := range qs {
		if len(q) < 2 || len(q) > 20 {
			t.Fatalf("query length %d outside [2,20]", len(q))
		}
		totalLen += float64(len(q))
		for _, tok := range q {
			tid, ok := idx.Lookup(tok)
			if !ok {
				t.Fatalf("term %q not in dictionary", tok)
			}
			if idx.FT(tid) >= longCut {
				hitsLong++
				break
			}
		}
	}
	avg := totalLen / float64(len(qs))
	if avg < 5 || avg > 13 {
		t.Fatalf("average TREC query length %.1f outside the plausible band", avg)
	}
	// Most verbose queries must contain at least one common word (§4.4).
	if float64(hitsLong)/float64(len(qs)) < 0.5 {
		t.Fatalf("only %d/%d queries hit a long list", hitsLong, len(qs))
	}
}

func TestZipfRanksShape(t *testing.T) {
	ranks := ZipfRanks(5000, 50, 1.3, 11)
	if len(ranks) != 5000 {
		t.Fatalf("%d ranks, want 5000", len(ranks))
	}
	counts := make([]int, 50)
	for _, r := range ranks {
		if r < 0 || r >= 50 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Head-skew: rank 0 must dominate the tail by a wide margin, and the
	// top 5 ranks must cover most of the stream.
	if counts[0] < counts[49]*4 {
		t.Fatalf("no head skew: head=%d tail=%d", counts[0], counts[49])
	}
	head := counts[0] + counts[1] + counts[2] + counts[3] + counts[4]
	if float64(head)/float64(len(ranks)) < 0.5 {
		t.Fatalf("top-5 ranks cover only %d/%d of the stream", head, len(ranks))
	}
	// Determinism (failures must reproduce).
	again := ZipfRanks(5000, 50, 1.3, 11)
	for i := range ranks {
		if ranks[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestZipfianStreamRepeatsPoolQueries(t *testing.T) {
	idx := buildIdx(t)
	stream := Zipfian(idx, 400, 20, 3, 1.3, 5)
	if len(stream) != 400 {
		t.Fatalf("%d queries, want 400", len(stream))
	}
	distinct := map[string]bool{}
	for _, q := range stream {
		if len(q) != 3 {
			t.Fatalf("query size %d, want 3", len(q))
		}
		distinct[q[0]+" "+q[1]+" "+q[2]] = true
	}
	// The stream replays a bounded pool: far fewer distinct queries than
	// stream entries (that repetition is what a VO cache feeds on).
	if len(distinct) > 20 {
		t.Fatalf("%d distinct queries from a pool of 20", len(distinct))
	}
	if len(distinct) < 2 {
		t.Fatalf("degenerate stream: %d distinct queries", len(distinct))
	}
}

func TestTriangularBounds(t *testing.T) {
	idx := buildIdx(t)
	_ = idx
	for _, x := range []float64{0, 0.25, 1, 4} {
		s := sqrtApprox(x)
		if math.Abs(s*s-x) > 1e-9 {
			t.Fatalf("sqrtApprox(%v) = %v", x, s)
		}
	}
}
