package workload

import (
	"math"
	"testing"

	"authtext/internal/corpus"
	"authtext/internal/index"
)

func buildIdx(t *testing.T) *index.Index {
	t.Helper()
	idx, err := index.Build(corpus.Generate(corpus.Tiny()), index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestSyntheticShape(t *testing.T) {
	idx := buildIdx(t)
	qs := Synthetic(idx, 50, 3, 1)
	if len(qs) != 50 {
		t.Fatalf("%d queries, want 50", len(qs))
	}
	for _, q := range qs {
		if len(q) != 3 {
			t.Fatalf("query size %d, want 3", len(q))
		}
		seen := map[string]bool{}
		for _, tok := range q {
			if seen[tok] {
				t.Fatalf("duplicate term in query %v", q)
			}
			seen[tok] = true
			if _, ok := idx.Lookup(tok); !ok {
				t.Fatalf("term %q not in dictionary", tok)
			}
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	idx := buildIdx(t)
	a := Synthetic(idx, 10, 4, 7)
	b := Synthetic(idx, 10, 4, 7)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestTRECLikeProperties(t *testing.T) {
	idx := buildIdx(t)
	qs := TRECLike(idx, 200, 3)
	var totalLen float64
	hitsLong := 0
	// "Long list" threshold: top decile by document frequency.
	lens := idx.ListLengths()
	sorted := append([]int{}, lens...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] < sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	longCut := sorted[len(sorted)/10]
	for _, q := range qs {
		if len(q) < 2 || len(q) > 20 {
			t.Fatalf("query length %d outside [2,20]", len(q))
		}
		totalLen += float64(len(q))
		for _, tok := range q {
			tid, ok := idx.Lookup(tok)
			if !ok {
				t.Fatalf("term %q not in dictionary", tok)
			}
			if idx.FT(tid) >= longCut {
				hitsLong++
				break
			}
		}
	}
	avg := totalLen / float64(len(qs))
	if avg < 5 || avg > 13 {
		t.Fatalf("average TREC query length %.1f outside the plausible band", avg)
	}
	// Most verbose queries must contain at least one common word (§4.4).
	if float64(hitsLong)/float64(len(qs)) < 0.5 {
		t.Fatalf("only %d/%d queries hit a long list", hitsLong, len(qs))
	}
}

func TestTriangularBounds(t *testing.T) {
	idx := buildIdx(t)
	_ = idx
	for _, x := range []float64{0, 0.25, 1, 4} {
		s := sqrtApprox(x)
		if math.Abs(s*s-x) > 1e-9 {
			t.Fatalf("sqrtApprox(%v) = %v", x, s)
		}
	}
}
