package httpapi

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"authtext/internal/wire"
)

// Golden binary-frame regression suite: the framed encodings of the same
// canonical values pinned by golden_test.go. The fixtures freeze the frame
// header layout (magic, version, type, flags, CRC) and the field order of
// every message codec — a byte diff here is a wire-protocol change and
// needs a version bump, not a silent regeneration. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/httpapi. The canonical values encode
// below the compression threshold, so the bytes are independent of the
// flate implementation.

var goldenFrameCases = []struct {
	file   string
	encode func() []byte
	check  func(t *testing.T, raw []byte)
}{
	{
		file:   "search_response.frame.bin",
		encode: func() []byte { return wire.EncodeSearchResponse(goldenSearchResponse()) },
		check: func(t *testing.T, raw []byte) {
			got, err := wire.DecodeSearchResponse(raw)
			if err != nil {
				t.Fatalf("golden frame no longer decodes: %v", err)
			}
			if want := goldenSearchResponse(); !reflect.DeepEqual(got, want) {
				t.Errorf("decoded frame disagrees with expected value:\n got: %#v\nwant: %#v", got, want)
			}
		},
	},
	{
		file:   "sharded_search_response.frame.bin",
		encode: func() []byte { return wire.EncodeShardedSearchResponse(goldenShardedSearchResponse()) },
		check: func(t *testing.T, raw []byte) {
			got, err := wire.DecodeShardedSearchResponse(raw)
			if err != nil {
				t.Fatalf("golden frame no longer decodes: %v", err)
			}
			if want := goldenShardedSearchResponse(); !reflect.DeepEqual(got, want) {
				t.Errorf("decoded frame disagrees with expected value:\n got: %#v\nwant: %#v", got, want)
			}
		},
	},
	{
		file: "manifest_response.frame.bin",
		encode: func() []byte {
			return wire.EncodeManifestResponse(&ManifestResponse{Format: FormatATCX, Export: []byte("ATCX-export-bytes")})
		},
		check: func(t *testing.T, raw []byte) {
			got, err := wire.DecodeManifestResponse(raw)
			if err != nil {
				t.Fatalf("golden frame no longer decodes: %v", err)
			}
			want := &ManifestResponse{Format: FormatATCX, Export: []byte("ATCX-export-bytes")}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("decoded frame disagrees with expected value:\n got: %#v\nwant: %#v", got, want)
			}
		},
	},
}

// goldenSearchResponse is the same canonical value golden_test.go pins as
// JSON, reused here so the two suites freeze one protocol surface.
func goldenSearchResponse() *SearchResponse {
	return &SearchResponse{
		Query:      "merkle tree proofs",
		R:          2,
		Algo:       AlgoTNRA,
		Scheme:     SchemeCMHT,
		Generation: 7,
		Hits: []Hit{
			{DocID: 7, Score: 3.25, Content: []byte("first document body")},
			{DocID: 2, Score: 1.5, Content: []byte("second document body")},
		},
		VO: []byte{0x01, 0x02, 0xfe, 0xff},
		Stats: SearchStats{
			QueryTerms:     3,
			EntriesRead:    120,
			EntriesPerTerm: 40,
			PctListRead:    12.5,
			BlockReads:     17,
			RandomReads:    4,
			IOMillis:       1.75,
			VOBytes:        4,
			ServerMillis:   0.5,
		},
	}
}

func goldenShardedSearchResponse() *ShardedSearchResponse {
	return &ShardedSearchResponse{
		Query:      "merkle tree proofs",
		R:          2,
		Algo:       AlgoTNRA,
		Scheme:     SchemeCMHT,
		Generation: 4,
		Shards: []SearchResponse{
			{
				Query: "merkle tree proofs", R: 2, Algo: AlgoTNRA, Scheme: SchemeCMHT,
				Generation: 4,
				Hits:       []Hit{{DocID: 0, Score: 2.5, Content: []byte("shard zero hit")}},
				VO:         []byte{0x0a},
				Stats: SearchStats{
					QueryTerms: 3, EntriesRead: 10, EntriesPerTerm: 3.3333,
					PctListRead: 50, BlockReads: 3, RandomReads: 0,
					IOMillis: 0.25, VOBytes: 1, ServerMillis: 0.1,
				},
			},
			{
				Query: "merkle tree proofs", R: 2, Algo: AlgoTNRA, Scheme: SchemeCMHT,
				Generation: 2,
				Hits:       []Hit{{DocID: 1, Score: 3.75, Content: []byte("shard one hit")}},
				VO:         []byte{0x0b, 0x0c},
				Stats: SearchStats{
					QueryTerms: 3, EntriesRead: 12, EntriesPerTerm: 4,
					PctListRead: 40, BlockReads: 4, RandomReads: 1,
					IOMillis: 0.5, VOBytes: 2, ServerMillis: 0.2,
				},
			},
		},
		Merged: []MergedHit{
			{Shard: 1, DocID: 1, GlobalID: 3, Score: 3.75},
			{Shard: 0, DocID: 0, GlobalID: 0, Score: 2.5},
		},
		Stats: ShardedSearchStats{
			Shards:       2,
			EntriesRead:  22,
			VOBytes:      3,
			IOMillis:     0.5,
			ServerMillis: 0.35,
		},
	}
}

func TestGoldenBinaryFrames(t *testing.T) {
	for _, tc := range goldenFrameCases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("testdata", tc.file)
			enc := tc.encode()
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(path, enc, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with UPDATE_GOLDEN=1 once): %v", err)
			}
			// Direction 1: the checked-in frame decodes to exactly the
			// expected value.
			tc.check(t, raw)
			// Direction 2: encoding the expected value reproduces the frame
			// byte for byte — the determinism the VO cache's byte-identity
			// guarantee rests on.
			if !bytes.Equal(enc, raw) {
				t.Errorf("re-encoded frame disagrees with the golden fixture\n got: %x\nwant: %x", enc, raw)
			}
		})
	}
}
