package httpapi

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"authtext/internal/obs"
)

// newMetricsHandler builds a handler over the fake backend with a fresh
// registry attached, returning both.
func newMetricsHandler(opts ...HandlerOpt) (http.Handler, *obs.Registry) {
	reg := obs.NewRegistry()
	h := NewHandler(&fakeBackend{}, append([]HandlerOpt{WithMetricsRegistry(reg)}, opts...)...)
	return h, reg
}

// scrape GETs /v1/metrics and returns the exposition body.
func scrape(t *testing.T, h http.Handler) []byte {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, PathMetrics, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", PathMetrics, w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	return w.Body.Bytes()
}

// TestMetricsGoldenExposition pins the exposition format of a freshly
// built handler: every pre-registered request series at zero, in
// deterministic order. Scraping is side-effect-free (the /v1/metrics
// endpoint is not instrumented), so two scrapes of an idle handler are
// byte-identical and the fixture needs no scrubbing. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/httpapi -run Golden.
func TestMetricsGoldenExposition(t *testing.T) {
	h, _ := newMetricsHandler()
	body := scrape(t, h)
	if !bytes.Equal(body, scrape(t, h)) {
		t.Fatal("two scrapes of an idle handler differ: scraping is not side-effect-free")
	}

	path := filepath.Join("testdata", "metrics.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("exposition drifted from %s.\nIf the change is intentional, regenerate with UPDATE_GOLDEN=1.\n--- got ---\n%s", path, body)
	}

	// The fixture must round-trip through the parser: every sample line
	// readable, names and labels preserved.
	samples, err := obs.Parse(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("golden fixture does not parse: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("golden fixture parsed to zero samples")
	}
	for _, s := range samples {
		if s.Value != 0 {
			t.Fatalf("idle handler exposed non-zero sample %s = %g", s.Key(), s.Value)
		}
	}
}

// TestMetricsRequestInstrumentation drives traffic through the handler and
// checks the request series move — and that scrapes do not count
// themselves.
func TestMetricsRequestInstrumentation(t *testing.T) {
	h, _ := newMetricsHandler()

	do(t, h, http.MethodPost, PathSearch, `{"query":"merkle","r":2}`)
	do(t, h, http.MethodPost, PathSearch, `{"query":"merkle","r":2}`)
	do(t, h, http.MethodGet, PathHealthz, "")
	do(t, h, http.MethodGet, "/no/such/path", "")

	first := parseSamples(t, scrape(t, h))
	assertSample(t, first, "authtext_http_requests_total", 2, obs.L("endpoint", "search"), obs.L("code", "200"))
	assertSample(t, first, "authtext_http_requests_total", 1, obs.L("endpoint", "healthz"), obs.L("code", "200"))
	assertSample(t, first, "authtext_http_requests_total", 1, obs.L("endpoint", "other"), obs.L("code", "404"))
	assertSample(t, first, "authtext_http_request_seconds_count", 2, obs.L("endpoint", "search"))
	if s, ok := obs.FindSample(first, "authtext_http_response_bytes_total", obs.L("endpoint", "search")); !ok || s.Value <= 0 {
		t.Fatalf("response bytes not recorded: %+v", s)
	}
	if s, ok := obs.FindSample(first, "authtext_search_stage_seconds_count", obs.L("stage", "wire_encode")); !ok || s.Value < 3 {
		t.Fatalf("wire_encode stage not recorded per JSON response: %+v", s)
	}

	// A scrape must not move any series: re-scrape and compare sample for
	// sample.
	second := parseSamples(t, scrape(t, h))
	if len(first) != len(second) {
		t.Fatalf("scrape changed the series set: %d -> %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Key() != second[i].Key() || first[i].Value != second[i].Value {
			t.Fatalf("scrape moved %s: %g -> %g", first[i].Key(), first[i].Value, second[i].Value)
		}
	}
}

// TestMetricsEndpointWithoutRegistry checks the endpoint stays a plain 404
// when no registry is attached — and that this 404 is instrumented like
// any other unknown path (request ID stamped, log record emitted): the
// scrape-bypass in instrument only applies when a registry is mounted.
func TestMetricsEndpointWithoutRegistry(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	h := NewHandler(&fakeBackend{}, WithRequestLog(logger))
	req := httptest.NewRequest(http.MethodGet, PathMetrics, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", w.Code)
	}
	if id := w.Header().Get(RequestIDHeader); !hexID.MatchString(id) {
		t.Fatalf("uninstrumented-registry 404 missing request ID (got %q)", id)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("no log record for /v1/metrics 404: %v (%q)", err, buf.String())
	}
	if rec["path"] != PathMetrics || rec["status"] != float64(http.StatusNotFound) {
		t.Fatalf("log record = %v", rec)
	}
}

// The recorder must expose the wrapped writer to http.ResponseController
// so Flusher/Hijacker/deadline capabilities survive instrumentation.
func TestRespRecorderUnwrap(t *testing.T) {
	w := httptest.NewRecorder()
	rr := &respRecorder{ResponseWriter: w}
	if got := rr.Unwrap(); got != http.ResponseWriter(w) {
		t.Fatalf("Unwrap() = %v, want the wrapped writer", got)
	}
	if err := http.NewResponseController(rr).Flush(); err != nil {
		t.Fatalf("Flush through ResponseController: %v", err)
	}
	if !w.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
}

var hexID = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestRequestIDMintedAndEchoed checks the three request-ID cases: absent
// (minted), usable inbound (honored), junk inbound (replaced).
func TestRequestIDMintedAndEchoed(t *testing.T) {
	h, _ := newMetricsHandler()

	w := do(t, h, http.MethodGet, PathHealthz, "")
	if id := w.Header().Get(RequestIDHeader); !hexID.MatchString(id) {
		t.Fatalf("minted ID %q is not 16 hex digits", id)
	}

	req := httptest.NewRequest(http.MethodGet, PathHealthz, nil)
	req.Header.Set(RequestIDHeader, "proxy-abc-123")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if id := rec.Header().Get(RequestIDHeader); id != "proxy-abc-123" {
		t.Fatalf("usable inbound ID not honored: got %q", id)
	}

	for _, junk := range []string{"has space", "ctrl\x01char", strings.Repeat("x", maxRequestIDLen+1)} {
		req := httptest.NewRequest(http.MethodGet, PathHealthz, nil)
		req.Header.Set(RequestIDHeader, junk)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if id := rec.Header().Get(RequestIDHeader); !hexID.MatchString(id) {
			t.Fatalf("junk inbound ID %q echoed instead of replaced (got %q)", junk, id)
		}
	}
}

// TestRequestLogRecords checks the structured request log carries the
// documented attributes, and that /v1/metrics scrapes are not logged.
func TestRequestLogRecords(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	h, _ := newMetricsHandler(WithRequestLog(logger))

	req := httptest.NewRequest(http.MethodGet, PathHealthz, nil)
	req.Header.Set(RequestIDHeader, "fixed-id-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	scrape(t, h)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly 1 log record (scrapes unlogged), got %d: %s", len(lines), buf.String())
	}
	var rec1 map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec1); err != nil {
		t.Fatal(err)
	}
	if rec1["request_id"] != "fixed-id-1" || rec1["endpoint"] != "healthz" ||
		rec1["method"] != http.MethodGet || rec1["status"] != float64(http.StatusOK) {
		t.Fatalf("log record missing fields: %v", rec1)
	}
}

func parseSamples(t *testing.T, body []byte) []obs.Sample {
	t.Helper()
	samples, err := obs.Parse(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	return samples
}

func assertSample(t *testing.T, samples []obs.Sample, name string, want float64, labels ...obs.Label) {
	t.Helper()
	s, ok := obs.FindSample(samples, name, labels...)
	if !ok {
		t.Fatalf("series %s %v not found", name, labels)
	}
	if s.Value != want {
		t.Fatalf("%s = %g, want %g", s.Key(), s.Value, want)
	}
}
