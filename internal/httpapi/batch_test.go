package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// batchBackend extends fakeBackend with a concurrent-capable batch hook so
// the handler's BatchBackend dispatch is observable.
type batchBackend struct {
	fakeBackend
	batchCalls int
}

func (b *batchBackend) SearchBatch(reqs []SearchRequest) []BatchSearchResult {
	b.batchCalls++
	out := make([]BatchSearchResult, len(reqs))
	for i := range reqs {
		resp, err := b.Search(&reqs[i])
		out[i] = BatchOutcome(resp, err)
	}
	return out
}

func TestBatchSearchFallsBackWithoutBatchBackend(t *testing.T) {
	b := &fakeBackend{}
	h := NewHandler(b)
	w := do(t, h, http.MethodPost, PathSearch, `{"queries":[{"query":"alpha"},{"query":"beta","r":3}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp BatchSearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("%d results", len(resp.Results))
	}
	for i, res := range resp.Results {
		if res.Error != nil || res.Response == nil {
			t.Fatalf("result %d: %+v", i, res)
		}
	}
	if resp.Results[1].Response.R != 3 || resp.Results[0].Response.R != DefaultR {
		t.Fatalf("r not preserved/defaulted: %+v", resp.Results)
	}
}

func TestBatchSearchUsesBatchBackend(t *testing.T) {
	b := &batchBackend{}
	h := NewHandler(b)
	w := do(t, h, http.MethodPost, PathSearch, `{"queries":[{"query":"alpha"},{"query":"beta"}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if b.batchCalls != 1 {
		t.Fatalf("batch backend called %d times", b.batchCalls)
	}
}

func TestBatchSearchPerQueryErrorsDoNotFailBatch(t *testing.T) {
	b := &batchBackend{}
	b.searchErr = errors.New("boom")
	h := NewHandler(b)
	w := do(t, h, http.MethodPost, PathSearch, `{"queries":[{"query":"alpha"}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 with per-query error", w.Code)
	}
	var resp BatchSearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Error == nil || resp.Results[0].Error.Code != CodeSearchFailed {
		t.Fatalf("bad batch error: %+v", resp.Results)
	}
}

func TestBatchSearchValidation(t *testing.T) {
	b := &fakeBackend{}
	h := NewHandler(b)

	// query and queries are mutually exclusive.
	w := do(t, h, http.MethodPost, PathSearch, `{"query":"x","queries":[{"query":"y"}]}`)
	wantError(t, w, http.StatusBadRequest, CodeBadRequest)

	// Per-query validation failures name the offending index.
	w = do(t, h, http.MethodPost, PathSearch, `{"queries":[{"query":"ok"},{"query":""}]}`)
	wantError(t, w, http.StatusBadRequest, CodeBadRequest)
	if !strings.Contains(w.Body.String(), "query 1") {
		t.Fatalf("error does not name the bad query: %s", w.Body.String())
	}

	// Oversized batches are rejected outright.
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i := 0; i <= MaxBatchQueries; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"query":"q%d"}`, i)
	}
	sb.WriteString(`]}`)
	w = do(t, h, http.MethodPost, PathSearch, sb.String())
	wantError(t, w, http.StatusBadRequest, CodeBadRequest)

	// An empty queries array is not a batch: it falls through to single
	// validation and fails on the empty query string.
	w = do(t, h, http.MethodPost, PathSearch, `{"queries":[]}`)
	wantError(t, w, http.StatusBadRequest, CodeBadRequest)
}

// A maximum batch — MaxBatchQueries queries of MaxQueryBytes each — must
// fit under MaxBodyBytes: per-element limits, not body truncation, are
// what bound a request.
func TestMaxBatchFitsBodyCap(t *testing.T) {
	b := &batchBackend{}
	h := NewHandler(b)
	q := strings.Repeat("a", MaxQueryBytes)
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i := 0; i < MaxBatchQueries; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"query":%q}`, q)
	}
	sb.WriteString(`]}`)
	w := do(t, h, http.MethodPost, PathSearch, sb.String())
	if w.Code != http.StatusOK {
		t.Fatalf("max batch rejected: %d %s", w.Code, w.Body.String()[:120])
	}
	var resp BatchSearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != MaxBatchQueries {
		t.Fatalf("%d results", len(resp.Results))
	}
}

func TestBatchOutcomeStatusErrorKeepsCode(t *testing.T) {
	res := BatchOutcome(nil, &StatusError{Status: 404, Code: CodeNotFound, Message: "gone"})
	if res.Error == nil || res.Error.Code != CodeNotFound {
		t.Fatalf("status error code lost: %+v", res)
	}
	res = BatchOutcome(&SearchResponse{}, nil)
	if res.Error != nil || res.Response == nil {
		t.Fatalf("success outcome wrong: %+v", res)
	}
}
