// Package httpapi defines the versioned wire format that puts the VO
// protocol on the network: JSON envelopes (with []byte fields carried as
// standard base64, per encoding/json) for search requests, results with
// their encoded verification objects, the signed-manifest bootstrap blob,
// and error reporting. The format is served by cmd/authserved and consumed
// by authtext.RemoteClient; docs/PROTOCOL.md is the normative description.
//
// The wire format is deliberately dumb: the VO stays the opaque binary
// encoding of internal/vo, and the manifest travels as the same ATCX
// export blob the owner publishes out of band. The security of the
// protocol therefore does not depend on this package — a client verifies
// everything it receives against the owner's public key, so a server (or
// proxy) that rewrites any field is detected by verification, not by
// transport checks.
package httpapi

import (
	"errors"
	"fmt"
	"strings"

	"authtext/internal/wire"
)

// APIVersion is the protocol version, which prefixes every endpoint path.
const APIVersion = "v1"

// Endpoint paths (see docs/PROTOCOL.md; sharded endpoints in
// docs/SHARDING.md).
const (
	PathSearch   = "/v1/search"
	PathManifest = "/v1/manifest"
	PathHealthz  = "/v1/healthz"
	// PathMetrics serves the metric registry in the Prometheus text
	// exposition format when the handler is built with a registry
	// (docs/OBSERVABILITY.md); otherwise it answers 404.
	PathMetrics = "/v1/metrics"
	// Sharded endpoints, served only by sharded deployments (a
	// non-sharded server answers 404).
	PathShardSearch   = "/v1/shards/search"
	PathShardManifest = "/v1/shards/manifest"
	// PathAdminUpdate accepts document add/remove batches on live
	// deployments (docs/UPDATES.md); anything else answers 404. It is an
	// OWNER-side endpoint: expose it only on trusted networks.
	PathAdminUpdate = "/v1/admin/update"
)

// Canonical algorithm and scheme names on the wire (case-insensitive on
// input, always lower-case on output).
const (
	AlgoTRA    = "tra"
	AlgoTNRA   = "tnra"
	SchemeMHT  = "mht"
	SchemeCMHT = "cmht"
)

// Request limits enforced by the handler.
const (
	// DefaultR is the result size when a request omits r.
	DefaultR = 10
	// MaxR caps the per-query result size.
	MaxR = 1000
	// MaxQueryBytes caps the query string length.
	MaxQueryBytes = 8 << 10
	// MaxBodyBytes caps the POST body size. It is sized so that a batch of
	// MaxBatchQueries maximum-length queries (plus JSON framing) fits:
	// per-element and per-batch limits, not body truncation, are what
	// reject an oversized request.
	MaxBodyBytes = 640 << 10
	// MaxBatchQueries caps the number of queries in one batch request.
	MaxBatchQueries = 64
	// MaxUpdateDocs caps the documents added or removed in one update
	// batch.
	MaxUpdateDocs = 1024
	// MaxUpdateBodyBytes caps the POST body of an update request
	// (documents ride in it, so it is larger than MaxBodyBytes).
	MaxUpdateBodyBytes = 32 << 20
)

// Machine-readable error codes carried in ErrorBody.Code.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeSearchFailed     = "search_failed"
	CodeUpdateFailed     = "update_failed"
	CodeUnavailable      = "unavailable"
	CodeInternal         = "internal"
	// CodeFleetUnavailable: a fleet front end exhausted its replica
	// backends without obtaining a generation-consistent answer
	// (docs/FLEET.md).
	CodeFleetUnavailable = "fleet_unavailable"
)

// GenerationHeader is the response header carrying the publication
// generation of the state that produced a response (decimal uint64,
// omitted on static deployments). It is an untrusted routing hint — the
// fleet front end uses it to refuse generation regressions during swaps —
// and is always cross-checked by clients against the signed generation
// inside the verified payload.
const GenerationHeader = "X-Authtext-Generation"

// SearchRequest asks for the top-R documents matching Query. Algo and
// Scheme select the query algorithm and authentication scheme; empty
// values default to TNRA + CMHT, the configuration the paper recommends.
type SearchRequest struct {
	Query  string `json:"query"`
	R      int    `json:"r,omitempty"`
	Algo   string `json:"algo,omitempty"`
	Scheme string `json:"scheme,omitempty"`
}

// Hit, SearchStats and SearchResponse (and the other response types
// below) are defined in internal/wire and aliased here: the JSON envelope
// and the binary framing serialise the identical structs, so the two
// representations can never drift. The JSON shape is unchanged.
type Hit = wire.Hit

// SearchStats reports the server-side per-query costs (§4.1 of the paper).
type SearchStats = wire.SearchStats

// SearchResponse is the answer to a SearchRequest.
type SearchResponse = wire.SearchResponse

// BatchSearchRequest is the batch form of a POST to /v1/search: up to
// MaxBatchQueries queries executed concurrently server-side. A body
// carrying a non-empty "queries" array is a batch request; "query" and
// "queries" are mutually exclusive.
type BatchSearchRequest struct {
	Queries []SearchRequest `json:"queries"`
}

// BatchSearchResult is one query's outcome inside a BatchSearchResponse.
type BatchSearchResult = wire.BatchSearchResult

// BatchSearchResponse answers a BatchSearchRequest; Results[i] corresponds
// to Queries[i].
type BatchSearchResponse = wire.BatchSearchResponse

// BatchOutcome wraps one query's backend outcome for the wire: a
// *StatusError keeps its code, any other error maps to search_failed.
func BatchOutcome(resp *SearchResponse, err error) BatchSearchResult {
	if err == nil {
		return BatchSearchResult{Response: resp}
	}
	code := CodeSearchFailed
	msg := err.Error()
	var se *StatusError
	if errors.As(err, &se) {
		code, msg = se.Code, se.Message
	}
	return BatchSearchResult{Error: &ErrorBody{Code: code, Message: msg}}
}

// ManifestResponse carries the owner's verification material
// (authtext.NewClientFromExport accepts Export).
type ManifestResponse = wire.ManifestResponse

// FormatATCX is the single-collection manifest export format.
const FormatATCX = "atcx"

// FormatATSX is the sharded manifest export format served at
// /v1/shards/manifest.
const FormatATSX = "atsx"

// MergedHit is one entry of the claimed global ranking of a sharded
// response.
type MergedHit = wire.MergedHit

// ShardedSearchStats aggregates server-side fan-out costs.
type ShardedSearchStats = wire.ShardedSearchStats

// ShardedSearchResponse is the answer of a sharded deployment.
type ShardedSearchResponse = wire.ShardedSearchResponse

// Health is the healthz payload: liveness plus collection shape and
// aggregate serving counters. Shards is 0 for a single-collection server
// and the shard count for a sharded one (clients use it to pick the
// endpoint family).
type Health struct {
	Status    string `json:"status"`
	Documents int    `json:"documents"`
	Terms     int    `json:"terms"`
	Shards    int    `json:"shards,omitempty"`
	// Generation is the currently served publication generation (0/absent
	// on static deployments).
	Generation    uint64 `json:"generation,omitempty"`
	UptimeMillis  int64  `json:"uptime_millis"`
	QueriesServed int64  `json:"queries_served"`
	QueriesFailed int64  `json:"queries_failed"`
	// Cache reports the server-side VO cache, absent when caching is
	// disabled (docs/PROTOCOL.md "Caching").
	Cache *CacheHealth `json:"cache,omitempty"`
}

// CacheHealth reports the server-side VO cache inside Health. Purely
// informational: the cache serves byte-identical responses whose integrity
// clients verify themselves, so nothing here participates in the protocol.
type CacheHealth struct {
	Entries       int64   `json:"entries"`
	Bytes         int64   `json:"bytes"`
	CapacityBytes int64   `json:"capacity_bytes"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
	Evictions     int64   `json:"evictions"`
	Invalidations int64   `json:"invalidations"`
}

// UpdateDocument is one document added by an update batch. Content is
// base64 on the wire, like Hit.Content.
type UpdateDocument struct {
	Content []byte `json:"content"`
}

// UpdateRequest is a POST to /v1/admin/update: one batch of additions
// and removals, applied atomically as a single generation change.
// Remove carries the document handles assigned when the documents were
// added (UpdateResponse.Added, or the owner's construction-time handles).
type UpdateRequest struct {
	Add    []UpdateDocument `json:"add,omitempty"`
	Remove []uint64         `json:"remove,omitempty"`
}

// Validate reports the first problem with the batch.
func (r *UpdateRequest) Validate() error {
	if len(r.Add) == 0 && len(r.Remove) == 0 {
		return fmt.Errorf("empty update batch")
	}
	if len(r.Add) > MaxUpdateDocs {
		return fmt.Errorf("%d added documents exceed the maximum of %d", len(r.Add), MaxUpdateDocs)
	}
	if len(r.Remove) > MaxUpdateDocs {
		return fmt.Errorf("%d removals exceed the maximum of %d", len(r.Remove), MaxUpdateDocs)
	}
	for i, d := range r.Add {
		if len(d.Content) == 0 {
			return fmt.Errorf("added document %d is empty", i)
		}
	}
	return nil
}

// UpdateResponse reports the accepted batch: the newly published
// generation, the handles assigned to the added documents (in request
// order), and the owner-side rebuild costs.
type UpdateResponse struct {
	Generation uint64 `json:"generation"`
	// Documents counts live documents; TombstonedSlots the removed-but-
	// still-indexed slots the generation carries. Compacted reports that
	// this rebuild dropped accumulated dead slots.
	Documents        int      `json:"documents"`
	TombstonedSlots  int      `json:"tombstoned_slots,omitempty"`
	Compacted        bool     `json:"compacted,omitempty"`
	Added            []uint64 `json:"added,omitempty"`
	Removed          int      `json:"removed"`
	SignaturesSigned int      `json:"signatures_signed"`
	SignaturesReused int      `json:"signatures_reused"`
	ShardsReused     int      `json:"shards_reused,omitempty"`
	RebuildMillis    float64  `json:"rebuild_millis"`
}

// ErrorResponse is the envelope of every non-2xx answer.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is a machine-readable code plus a human-readable message.
type ErrorBody = wire.ErrorBody

// StatusError is an error with an HTTP status and a wire code. Backends
// return it to control the handler's error mapping; any other error is
// reported as 500/internal.
type StatusError struct {
	Status  int
	Code    string
	Message string
}

// Error implements error.
func (e *StatusError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// NormalizeAlgo canonicalises an algorithm name ("" defaults to TNRA).
func NormalizeAlgo(s string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", AlgoTNRA:
		return AlgoTNRA, nil
	case AlgoTRA:
		return AlgoTRA, nil
	}
	return "", fmt.Errorf("unknown algorithm %q (want %q or %q)", s, AlgoTRA, AlgoTNRA)
}

// NormalizeScheme canonicalises a scheme name ("" defaults to CMHT).
func NormalizeScheme(s string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", SchemeCMHT:
		return SchemeCMHT, nil
	case SchemeMHT:
		return SchemeMHT, nil
	}
	return "", fmt.Errorf("unknown scheme %q (want %q or %q)", s, SchemeMHT, SchemeCMHT)
}

// Validate normalises the request in place and reports the first problem.
func (r *SearchRequest) Validate() error {
	r.Query = strings.TrimSpace(r.Query)
	if r.Query == "" {
		return fmt.Errorf("empty query")
	}
	if len(r.Query) > MaxQueryBytes {
		return fmt.Errorf("query exceeds %d bytes", MaxQueryBytes)
	}
	if r.R == 0 {
		r.R = DefaultR
	}
	if r.R < 1 || r.R > MaxR {
		return fmt.Errorf("r=%d out of range [1, %d]", r.R, MaxR)
	}
	var err error
	if r.Algo, err = NormalizeAlgo(r.Algo); err != nil {
		return err
	}
	if r.Scheme, err = NormalizeScheme(r.Scheme); err != nil {
		return err
	}
	return nil
}
