package httpapi

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Golden wire-format regression suite: the /v1 JSON formats are a public
// protocol, so accidental field renames, type changes or dropped fields
// must fail loudly. Each fixture under testdata/ is the canonical encoding
// of a fully populated wire value; the test checks both directions —
// decoding the fixture yields exactly the expected Go value, and encoding
// the expected Go value yields exactly the fixture's JSON (field for
// field). Regenerate with UPDATE_GOLDEN=1 go test ./internal/httpapi —
// and when you do, say why in the commit: any diff here is a protocol
// version bump in disguise.

var goldenCases = []struct {
	file  string
	value interface{} // pointer to expected value
	fresh func() interface{}
}{
	{
		file: "search_request.json",
		value: &SearchRequest{
			Query:  "merkle tree proofs",
			R:      25,
			Algo:   AlgoTRA,
			Scheme: SchemeCMHT,
		},
		fresh: func() interface{} { return new(SearchRequest) },
	},
	{
		file: "search_response.json",
		value: &SearchResponse{
			Query:      "merkle tree proofs",
			R:          2,
			Algo:       AlgoTNRA,
			Scheme:     SchemeCMHT,
			Generation: 7,
			Hits: []Hit{
				{DocID: 7, Score: 3.25, Content: []byte("first document body")},
				{DocID: 2, Score: 1.5, Content: []byte("second document body")},
			},
			VO: []byte{0x01, 0x02, 0xfe, 0xff},
			Stats: SearchStats{
				QueryTerms:     3,
				EntriesRead:    120,
				EntriesPerTerm: 40,
				PctListRead:    12.5,
				BlockReads:     17,
				RandomReads:    4,
				IOMillis:       1.75,
				VOBytes:        4,
				ServerMillis:   0.5,
			},
		},
		fresh: func() interface{} { return new(SearchResponse) },
	},
	{
		file: "sharded_search_response.json",
		value: &ShardedSearchResponse{
			Query:      "merkle tree proofs",
			R:          2,
			Algo:       AlgoTNRA,
			Scheme:     SchemeCMHT,
			Generation: 4,
			Shards: []SearchResponse{
				{
					Query: "merkle tree proofs", R: 2, Algo: AlgoTNRA, Scheme: SchemeCMHT,
					// Shard rebuilt at set generation 4; its sibling was
					// carried over unchanged from generation 2.
					Generation: 4,
					Hits:       []Hit{{DocID: 0, Score: 2.5, Content: []byte("shard zero hit")}},
					VO:         []byte{0x0a},
					Stats: SearchStats{
						QueryTerms: 3, EntriesRead: 10, EntriesPerTerm: 3.3333,
						PctListRead: 50, BlockReads: 3, RandomReads: 0,
						IOMillis: 0.25, VOBytes: 1, ServerMillis: 0.1,
					},
				},
				{
					Query: "merkle tree proofs", R: 2, Algo: AlgoTNRA, Scheme: SchemeCMHT,
					Generation: 2,
					Hits:       []Hit{{DocID: 1, Score: 3.75, Content: []byte("shard one hit")}},
					VO:         []byte{0x0b, 0x0c},
					Stats: SearchStats{
						QueryTerms: 3, EntriesRead: 12, EntriesPerTerm: 4,
						PctListRead: 40, BlockReads: 4, RandomReads: 1,
						IOMillis: 0.5, VOBytes: 2, ServerMillis: 0.2,
					},
				},
			},
			Merged: []MergedHit{
				{Shard: 1, DocID: 1, GlobalID: 3, Score: 3.75},
				{Shard: 0, DocID: 0, GlobalID: 0, Score: 2.5},
			},
			Stats: ShardedSearchStats{
				Shards:       2,
				EntriesRead:  22,
				VOBytes:      3,
				IOMillis:     0.5,
				ServerMillis: 0.35,
			},
		},
		fresh: func() interface{} { return new(ShardedSearchResponse) },
	},
	{
		file:  "manifest_response.json",
		value: &ManifestResponse{Format: FormatATCX, Export: []byte("ATCX-export-bytes")},
		fresh: func() interface{} { return new(ManifestResponse) },
	},
	{
		file:  "sharded_manifest_response.json",
		value: &ManifestResponse{Format: FormatATSX, Export: []byte("ATSX-export-bytes")},
		fresh: func() interface{} { return new(ManifestResponse) },
	},
	{
		file: "health.json",
		value: &Health{
			Status: "ok", Documents: 172961, Terms: 181978, Shards: 4, Generation: 12,
			UptimeMillis: 86400000, QueriesServed: 1048576, QueriesFailed: 3,
		},
		fresh: func() interface{} { return new(Health) },
	},
	{
		// A caching server's healthz: the optional cache block is present
		// and fully populated (it is omitted entirely when caching is off —
		// health.json above pins that shape).
		file: "health_cached.json",
		value: &Health{
			Status: "ok", Documents: 172961, Terms: 181978, Generation: 12,
			UptimeMillis: 86400000, QueriesServed: 1048576, QueriesFailed: 3,
			Cache: &CacheHealth{
				Entries: 812, Bytes: 9371648, CapacityBytes: 67108864,
				Hits: 914131, Misses: 134445, HitRate: 0.8718,
				Evictions: 1041, Invalidations: 3200,
			},
		},
		fresh: func() interface{} { return new(Health) },
	},
	{
		file: "update_request.json",
		value: &UpdateRequest{
			Add:    []UpdateDocument{{Content: []byte("a freshly published document")}},
			Remove: []uint64{17, 42},
		},
		fresh: func() interface{} { return new(UpdateRequest) },
	},
	{
		file: "update_response.json",
		value: &UpdateResponse{
			Generation:       8,
			Documents:        1023,
			Added:            []uint64{1025},
			Removed:          2,
			SignaturesSigned: 61,
			SignaturesReused: 4357,
			ShardsReused:     3,
			RebuildMillis:    241.5,
		},
		fresh: func() interface{} { return new(UpdateResponse) },
	},
	{
		file:  "error_response.json",
		value: &ErrorResponse{Error: ErrorBody{Code: CodeBadRequest, Message: "r=0 out of range [1, 1000]"}},
		fresh: func() interface{} { return new(ErrorResponse) },
	},
}

func TestGoldenWireFormats(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("testdata", tc.file)
			if os.Getenv("UPDATE_GOLDEN") != "" {
				enc, err := json.MarshalIndent(tc.value, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with UPDATE_GOLDEN=1 once): %v", err)
			}

			// Direction 1: the checked-in bytes must decode to exactly the
			// expected value (catches renamed/retyped/dropped fields).
			got := tc.fresh()
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.DisallowUnknownFields()
			if err := dec.Decode(got); err != nil {
				t.Fatalf("golden fixture no longer decodes: %v", err)
			}
			if !reflect.DeepEqual(got, tc.value) {
				t.Errorf("decoded fixture disagrees with expected value:\n got: %#v\nwant: %#v", got, tc.value)
			}

			// Direction 2: encoding the expected value must reproduce the
			// fixture's JSON exactly, field for field (catches added fields
			// and changed names/tags on the way out).
			enc, err := json.Marshal(tc.value)
			if err != nil {
				t.Fatal(err)
			}
			var a, b interface{}
			if err := json.Unmarshal(enc, &a); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(raw, &b); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("re-encoded value disagrees with the golden fixture\n got: %s\nwant: %s", enc, raw)
			}
		})
	}
}
