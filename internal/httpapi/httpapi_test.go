package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type fakeBackend struct {
	lastReq   *SearchRequest
	searchErr error
	exportErr error
}

func (f *fakeBackend) Search(req *SearchRequest) (*SearchResponse, error) {
	f.lastReq = req
	if f.searchErr != nil {
		return nil, f.searchErr
	}
	return &SearchResponse{
		Query: req.Query, R: req.R, Algo: req.Algo, Scheme: req.Scheme,
		Hits: []Hit{{DocID: 7, Score: 1.5, Content: []byte("body")}},
		VO:   []byte{0xde, 0xad},
	}, nil
}

func (f *fakeBackend) ClientExport() ([]byte, error) {
	if f.exportErr != nil {
		return nil, f.exportErr
	}
	return []byte("ATCXblob"), nil
}

func (f *fakeBackend) Health() Health {
	return Health{Status: "ok", Documents: 3, Terms: 9}
}

func do(t *testing.T, h http.Handler, method, target string, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req := httptest.NewRequest(method, target, rd)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s %s: Content-Type = %q", method, target, ct)
	}
	return w
}

func wantError(t *testing.T, w *httptest.ResponseRecorder, status int, code string) {
	t.Helper()
	if w.Code != status {
		t.Fatalf("status = %d, want %d (body %s)", w.Code, status, w.Body)
	}
	var env ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("error body is not an envelope: %v", err)
	}
	if env.Error.Code != code {
		t.Fatalf("code = %q, want %q", env.Error.Code, code)
	}
}

func TestSearchPostAndGetAgree(t *testing.T) {
	b := &fakeBackend{}
	h := NewHandler(b)

	post := do(t, h, http.MethodPost, PathSearch, `{"query":"merkle tree","r":3,"algo":"TRA","scheme":"MHT"}`)
	if post.Code != http.StatusOK {
		t.Fatalf("POST status %d: %s", post.Code, post.Body)
	}
	var fromPost SearchResponse
	if err := json.Unmarshal(post.Body.Bytes(), &fromPost); err != nil {
		t.Fatal(err)
	}

	get := do(t, h, http.MethodGet, PathSearch+"?q=merkle+tree&r=3&algo=TRA&scheme=MHT", "")
	if get.Code != http.StatusOK {
		t.Fatalf("GET status %d: %s", get.Code, get.Body)
	}
	var fromGet SearchResponse
	if err := json.Unmarshal(get.Body.Bytes(), &fromGet); err != nil {
		t.Fatal(err)
	}

	if fromPost.Algo != AlgoTRA || fromPost.Scheme != SchemeMHT {
		t.Fatalf("names not normalised: %+v", fromPost)
	}
	if fromPost.Query != fromGet.Query || fromPost.R != fromGet.R ||
		fromPost.Algo != fromGet.Algo || fromPost.Scheme != fromGet.Scheme {
		t.Fatalf("POST %+v and GET %+v disagree", fromPost, fromGet)
	}
	if len(fromGet.Hits) != 1 || fromGet.Hits[0].DocID != 7 || string(fromGet.Hits[0].Content) != "body" {
		t.Fatalf("hits did not round-trip: %+v", fromGet.Hits)
	}
	if !bytes.Equal(fromGet.VO, []byte{0xde, 0xad}) {
		t.Fatalf("VO did not round-trip: %x", fromGet.VO)
	}
}

func TestSearchDefaults(t *testing.T) {
	b := &fakeBackend{}
	h := NewHandler(b)
	w := do(t, h, http.MethodPost, PathSearch, `{"query":"x"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if b.lastReq.R != DefaultR || b.lastReq.Algo != AlgoTNRA || b.lastReq.Scheme != SchemeCMHT {
		t.Fatalf("defaults not applied: %+v", b.lastReq)
	}
}

func TestSearchRejectsBadRequests(t *testing.T) {
	h := NewHandler(&fakeBackend{})
	cases := []struct {
		name, method, target, body string
	}{
		{"empty query", http.MethodPost, PathSearch, `{"query":"  "}`},
		{"bad algo", http.MethodPost, PathSearch, `{"query":"x","algo":"bsearch"}`},
		{"bad scheme", http.MethodPost, PathSearch, `{"query":"x","scheme":"btree"}`},
		{"r too large", http.MethodPost, PathSearch, `{"query":"x","r":100000}`},
		{"negative r", http.MethodPost, PathSearch, `{"query":"x","r":-1}`},
		{"unknown field", http.MethodPost, PathSearch, `{"query":"x","bogus":1}`},
		{"not json", http.MethodPost, PathSearch, `hello`},
		{"long query", http.MethodPost, PathSearch, `{"query":"` + strings.Repeat("a", MaxQueryBytes+1) + `"}`},
		{"bad r param", http.MethodGet, PathSearch + "?q=x&r=many", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantError(t, do(t, NewHandler(&fakeBackend{}), c.method, c.target, c.body), http.StatusBadRequest, CodeBadRequest)
		})
	}
	_ = h
}

func TestMethodAndPathErrors(t *testing.T) {
	h := NewHandler(&fakeBackend{})
	wantError(t, do(t, h, http.MethodDelete, PathSearch, ""), http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	wantError(t, do(t, h, http.MethodPost, PathHealthz, ""), http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	wantError(t, do(t, h, http.MethodPost, PathManifest, ""), http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	wantError(t, do(t, h, http.MethodGet, "/v2/search", ""), http.StatusNotFound, CodeNotFound)
	wantError(t, do(t, h, http.MethodGet, "/", ""), http.StatusNotFound, CodeNotFound)
}

func TestBackendErrorMapping(t *testing.T) {
	plain := &fakeBackend{searchErr: errors.New("disk on fire")}
	wantError(t, do(t, NewHandler(plain), http.MethodGet, PathSearch+"?q=x", ""),
		http.StatusInternalServerError, CodeSearchFailed)

	status := &fakeBackend{searchErr: &StatusError{Status: http.StatusBadRequest, Code: CodeBadRequest, Message: "nope"}}
	wantError(t, do(t, NewHandler(status), http.MethodGet, PathSearch+"?q=x", ""),
		http.StatusBadRequest, CodeBadRequest)

	noExport := &fakeBackend{exportErr: errors.New("HMAC collections have no public key")}
	wantError(t, do(t, NewHandler(noExport), http.MethodGet, PathManifest, ""),
		http.StatusServiceUnavailable, CodeUnavailable)
}

func TestManifestAndHealthz(t *testing.T) {
	h := NewHandler(&fakeBackend{})
	w := do(t, h, http.MethodGet, PathManifest, "")
	if w.Code != http.StatusOK {
		t.Fatalf("manifest status %d", w.Code)
	}
	var m ManifestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Format != FormatATCX || string(m.Export) != "ATCXblob" {
		t.Fatalf("manifest = %+v", m)
	}

	w = do(t, h, http.MethodGet, PathHealthz, "")
	var hp Health
	if err := json.Unmarshal(w.Body.Bytes(), &hp); err != nil {
		t.Fatal(err)
	}
	if hp.Status != "ok" || hp.Documents != 3 || hp.Terms != 9 {
		t.Fatalf("health = %+v", hp)
	}
}

func TestReadErrorResponse(t *testing.T) {
	se := ReadErrorResponse(http.StatusBadGateway, strings.NewReader(`{"error":{"code":"bad_request","message":"m"}}`))
	if se.Code != CodeBadRequest || se.Message != "m" || se.Status != http.StatusBadGateway {
		t.Fatalf("parsed = %+v", se)
	}
	se = ReadErrorResponse(http.StatusBadGateway, strings.NewReader("<html>nginx</html>"))
	if se.Code != CodeInternal || se.Status != http.StatusBadGateway {
		t.Fatalf("fallback = %+v", se)
	}
}
