package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"authtext/internal/wire"
)

// FrameContentType is the negotiated binary media type
// (wire.ContentType re-exported for callers that only import httpapi).
const FrameContentType = wire.ContentType

// Backend is the search engine behind a Handler. Implementations must be
// safe for concurrent use; the adapter in the root authtext package wraps
// an authtext.Server.
type Backend interface {
	// Search answers one validated query. Returning a *StatusError
	// controls the HTTP status and wire code; any other error maps to
	// 500/search_failed.
	Search(req *SearchRequest) (*SearchResponse, error)
	// ClientExport returns the ATCX verification blob served at
	// /v1/manifest.
	ClientExport() ([]byte, error)
	// Health returns the current healthz payload.
	Health() Health
}

// BatchBackend is the optional extension a backend implements to execute
// batch search requests with its own concurrency (the facade server uses a
// bounded worker pool). When a backend does not implement it, the handler
// answers batch requests by calling Search once per query, sequentially.
type BatchBackend interface {
	Backend
	// SearchBatch answers the validated queries, returning one outcome per
	// query in input order.
	SearchBatch(reqs []SearchRequest) []BatchSearchResult
}

// LiveBackend is the optional extension a live deployment implements on
// top of Backend: accepting document update batches at /v1/admin/update.
// A serving-only live deployment (snapshot replica) implements it too and
// rejects updates with a *StatusError, so the endpoint exists wherever
// generations do.
type LiveBackend interface {
	Backend
	// Update applies one validated add/remove batch as a single
	// generation change.
	Update(req *UpdateRequest) (*UpdateResponse, error)
}

// ShardBackend is the optional extension a sharded deployment implements
// on top of Backend: parallel fan-out search over every shard and the
// sharded (ATSX) verification-material bootstrap.
type ShardBackend interface {
	Backend
	// ShardSearch answers one validated query with per-shard responses
	// plus the merged global ranking.
	ShardSearch(req *SearchRequest) (*ShardedSearchResponse, error)
	// ShardExport returns the ATSX blob served at /v1/shards/manifest.
	ShardExport() ([]byte, error)
}

// GenerationBackend is the optional extension a live deployment implements
// to expose its currently served publication generation. The handler
// stamps it into the GenerationHeader of responses whose payload does not
// already carry one (manifest), so a fleet front end can route
// generation-consistently without decoding bodies.
type GenerationBackend interface {
	// CurrentGeneration returns the currently served generation (0 on
	// static deployments, which suppresses the header).
	CurrentGeneration() uint64
}

// setGenHeader stamps the generation routing hint; 0 means "static
// deployment", which omits the header entirely.
func setGenHeader(w http.ResponseWriter, gen uint64) {
	if gen > 0 {
		w.Header().Set(GenerationHeader, strconv.FormatUint(gen, 10))
	}
}

// NewHandler wires the /v1 endpoints onto a Backend. When the backend also
// implements ShardBackend, the /v1/shards endpoints are registered too;
// otherwise they answer 404 like any unknown path. Every response body —
// including errors — is a JSON document. Options attach a metric registry
// (served at /v1/metrics, with every request counted and timed) and a
// structured request logger (middleware.go).
func NewHandler(b Backend, opts ...HandlerOpt) http.Handler {
	var cfg handlerConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	endpoints := []string{"search", "manifest", "healthz"}
	mux := http.NewServeMux()
	mux.HandleFunc(PathSearch, func(w http.ResponseWriter, r *http.Request) {
		handleSearch(w, r, b)
	})
	if sb, ok := b.(ShardBackend); ok {
		endpoints = append(endpoints, "shards_search", "shards_manifest")
		mux.HandleFunc(PathShardSearch, func(w http.ResponseWriter, r *http.Request) {
			req, ok := readSearchRequest(w, r)
			if !ok {
				return
			}
			resp, err := sb.ShardSearch(req)
			if err != nil {
				writeError(w, err, CodeSearchFailed, http.StatusInternalServerError)
				return
			}
			setGenHeader(w, resp.Generation)
			writeData(w, r, resp, func() []byte { return wire.EncodeShardedSearchResponse(resp) })
		})
		mux.HandleFunc(PathShardManifest, func(w http.ResponseWriter, r *http.Request) {
			if !allowMethod(w, r, http.MethodGet) {
				return
			}
			export, err := sb.ShardExport()
			if err != nil {
				writeError(w, err, CodeUnavailable, http.StatusServiceUnavailable)
				return
			}
			if gb, ok := b.(GenerationBackend); ok {
				setGenHeader(w, gb.CurrentGeneration())
			}
			m := &ManifestResponse{Format: FormatATSX, Export: export}
			writeData(w, r, m, func() []byte { return wire.EncodeManifestResponse(m) })
		})
	}
	if lb, ok := b.(LiveBackend); ok {
		endpoints = append(endpoints, "admin_update")
		mux.HandleFunc(PathAdminUpdate, func(w http.ResponseWriter, r *http.Request) {
			if !allowMethod(w, r, http.MethodPost) {
				return
			}
			var req UpdateRequest
			if !decodeBodyCapped(w, r, &req, MaxUpdateBodyBytes) {
				return
			}
			if err := req.Validate(); err != nil {
				writeErrorBody(w, http.StatusBadRequest, CodeBadRequest, err.Error())
				return
			}
			resp, err := lb.Update(&req)
			if err != nil {
				writeError(w, err, CodeUpdateFailed, http.StatusConflict)
				return
			}
			writeJSON(w, http.StatusOK, resp)
		})
	}
	mux.HandleFunc(PathManifest, func(w http.ResponseWriter, r *http.Request) {
		if !allowMethod(w, r, http.MethodGet) {
			return
		}
		export, err := b.ClientExport()
		if err != nil {
			writeError(w, err, CodeUnavailable, http.StatusServiceUnavailable)
			return
		}
		if gb, ok := b.(GenerationBackend); ok {
			setGenHeader(w, gb.CurrentGeneration())
		}
		m := &ManifestResponse{Format: FormatATCX, Export: export}
		writeData(w, r, m, func() []byte { return wire.EncodeManifestResponse(m) })
	})
	mux.HandleFunc(PathHealthz, func(w http.ResponseWriter, r *http.Request) {
		if !allowMethod(w, r, http.MethodGet) {
			return
		}
		h := b.Health()
		setGenHeader(w, h.Generation)
		writeJSON(w, http.StatusOK, h)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErrorBody(w, http.StatusNotFound, CodeNotFound, "no such endpoint: "+r.URL.Path)
	})
	var ins *httpInstruments
	if cfg.reg != nil {
		mux.Handle(PathMetrics, cfg.reg.Handler())
		ins = newHTTPInstruments(cfg.reg, endpoints)
	}
	if ins == nil && cfg.log == nil {
		return mux
	}
	return instrument(mux, ins, cfg.log)
}

// handleSearch accepts POST (JSON body, single or batch form) and GET
// (q, r, algo, scheme query parameters).
func handleSearch(w http.ResponseWriter, r *http.Request, b Backend) {
	single, batch, ok := readSearchEnvelope(w, r)
	if !ok {
		return
	}
	if batch != nil {
		resp := &BatchSearchResponse{Results: searchBatch(b, batch)}
		var maxGen uint64
		for i := range resp.Results {
			if sr := resp.Results[i].Response; sr != nil && sr.Generation > maxGen {
				maxGen = sr.Generation
			}
		}
		setGenHeader(w, maxGen)
		writeData(w, r, resp, func() []byte { return wire.EncodeBatchSearchResponse(resp) })
		return
	}
	resp, err := b.Search(single)
	if err != nil {
		writeError(w, err, CodeSearchFailed, http.StatusInternalServerError)
		return
	}
	setGenHeader(w, resp.Generation)
	writeData(w, r, resp, func() []byte { return wire.EncodeSearchResponse(resp) })
}

// acceptsFrame reports whether the request opted into the binary framing:
// its Accept header lists the frame media type. Negotiation is strictly
// opt-in — absent, empty, wildcard-only or unparsable Accept values all
// keep the JSON default, so existing clients cannot be surprised.
func acceptsFrame(r *http.Request) bool {
	for _, accept := range r.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			mediaType, _, _ := strings.Cut(part, ";")
			if strings.EqualFold(strings.TrimSpace(mediaType), wire.ContentType) {
				return true
			}
		}
	}
	return false
}

// writeData writes a 200 payload in the negotiated representation: a
// binary frame when the request accepted one, the JSON encoding (the
// default) otherwise. Errors never take this path — they are always JSON,
// so failures stay debuggable with nothing but curl.
func writeData(w http.ResponseWriter, r *http.Request, v interface{}, frame func() []byte) {
	if !acceptsFrame(r) {
		writeJSON(w, http.StatusOK, v)
		if rr, ok := w.(*respRecorder); ok {
			rr.negotiated = negotiatedJSON
		}
		return
	}
	start := time.Now()
	b := frame()
	encode := time.Since(start)
	w.Header().Set("Content-Type", wire.ContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
	if rr, ok := w.(*respRecorder); ok {
		// The wire_encode stage: binary framing of the response body.
		rr.encode += encode
		rr.negotiated = negotiatedBinary
	}
}

// searchBatch dispatches a validated batch to the backend's own concurrent
// implementation when it has one, falling back to sequential execution.
func searchBatch(b Backend, reqs []SearchRequest) []BatchSearchResult {
	if bb, ok := b.(BatchBackend); ok {
		return bb.SearchBatch(reqs)
	}
	out := make([]BatchSearchResult, len(reqs))
	for i := range reqs {
		resp, err := b.Search(&reqs[i])
		out[i] = BatchOutcome(resp, err)
	}
	return out
}

// searchEnvelope accepts both the single and the batch form of a POST
// /v1/search body.
type searchEnvelope struct {
	SearchRequest
	Queries []SearchRequest `json:"queries"`
}

// readSearchEnvelope parses a /v1/search request, writing the error
// response itself when the request is unusable. Exactly one of the two
// returns is set on success: a single validated request, or a validated
// batch.
func readSearchEnvelope(w http.ResponseWriter, r *http.Request) (*SearchRequest, []SearchRequest, bool) {
	if r.Method != http.MethodPost {
		req, ok := readSearchRequest(w, r)
		return req, nil, ok
	}
	var env searchEnvelope
	if !decodeBody(w, r, &env) {
		return nil, nil, false
	}
	if len(env.Queries) == 0 {
		if err := env.SearchRequest.Validate(); err != nil {
			writeErrorBody(w, http.StatusBadRequest, CodeBadRequest, err.Error())
			return nil, nil, false
		}
		return &env.SearchRequest, nil, true
	}
	if env.Query != "" {
		writeErrorBody(w, http.StatusBadRequest, CodeBadRequest, "query and queries are mutually exclusive")
		return nil, nil, false
	}
	if len(env.Queries) > MaxBatchQueries {
		writeErrorBody(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("batch of %d queries exceeds the maximum of %d", len(env.Queries), MaxBatchQueries))
		return nil, nil, false
	}
	for i := range env.Queries {
		if err := env.Queries[i].Validate(); err != nil {
			writeErrorBody(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("query %d: %s", i, err.Error()))
			return nil, nil, false
		}
	}
	return nil, env.Queries, true
}

// readSearchRequest parses and validates a search request from POST (JSON
// body) or GET (q, r, algo, scheme query parameters), writing the error
// response itself when the request is unusable.
func readSearchRequest(w http.ResponseWriter, r *http.Request) (*SearchRequest, bool) {
	var req SearchRequest
	switch r.Method {
	case http.MethodPost:
		if !decodeBody(w, r, &req) {
			return nil, false
		}
	case http.MethodGet:
		q := r.URL.Query()
		req.Query = q.Get("q")
		req.Algo = q.Get("algo")
		req.Scheme = q.Get("scheme")
		if rs := q.Get("r"); rs != "" {
			n, err := strconv.Atoi(rs)
			if err != nil {
				writeErrorBody(w, http.StatusBadRequest, CodeBadRequest, "bad r parameter: "+rs)
				return nil, false
			}
			req.R = n
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeErrorBody(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, r.Method+" not allowed")
		return nil, false
	}
	if err := req.Validate(); err != nil {
		writeErrorBody(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return nil, false
	}
	return &req, true
}

// decodeBody parses a size-capped JSON POST body into v, rejecting unknown
// fields and trailing data, writing the error response itself on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	return decodeBodyCapped(w, r, v, MaxBodyBytes)
}

func decodeBodyCapped(w http.ResponseWriter, r *http.Request, v interface{}, limit int64) bool {
	body := http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErrorBody(w, http.StatusBadRequest, CodeBadRequest, "bad request body: "+err.Error())
		return false
	}
	if dec.More() {
		writeErrorBody(w, http.StatusBadRequest, CodeBadRequest, "trailing data after request object")
		return false
	}
	return true
}

func allowMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	writeErrorBody(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, r.Method+" not allowed")
	return false
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	start := time.Now()
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is gone; nothing left to report to
	if rr, ok := w.(*respRecorder); ok {
		// The wire_encode stage: JSON serialisation of the response body.
		rr.encode += time.Since(start)
	}
}

// writeError maps an error to the wire: *StatusError chooses its own
// status and code, everything else gets the supplied defaults.
func writeError(w http.ResponseWriter, err error, defaultCode string, defaultStatus int) {
	var se *StatusError
	if errors.As(err, &se) {
		writeErrorBody(w, se.Status, se.Code, se.Message)
		return
	}
	writeErrorBody(w, defaultStatus, defaultCode, err.Error())
}

func writeErrorBody(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, &ErrorResponse{Error: ErrorBody{Code: code, Message: msg}})
}

// ReadErrorResponse decodes an error envelope from a response body,
// returning a generic message when the body is not a well-formed envelope
// (e.g. the server is not an authserved at all).
func ReadErrorResponse(status int, body io.Reader) *StatusError {
	var env ErrorResponse
	if err := json.NewDecoder(io.LimitReader(body, MaxBodyBytes)).Decode(&env); err != nil || env.Error.Code == "" {
		return &StatusError{Status: status, Code: CodeInternal, Message: http.StatusText(status)}
	}
	return &StatusError{Status: status, Code: env.Error.Code, Message: env.Error.Message}
}
