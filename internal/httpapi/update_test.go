package httpapi

import (
	"net/http"
	"testing"
)

func TestUpdateRequestValidate(t *testing.T) {
	ok := &UpdateRequest{
		Add:    []UpdateDocument{{Content: []byte("body")}},
		Remove: []uint64{7},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	cases := map[string]*UpdateRequest{
		"empty batch":       {},
		"empty document":    {Add: []UpdateDocument{{}}},
		"too many adds":     {Add: make([]UpdateDocument, MaxUpdateDocs+1)},
		"too many removals": {Remove: make([]uint64, MaxUpdateDocs+1)},
	}
	for name, req := range cases {
		for i := range req.Add {
			if name != "empty document" {
				req.Add[i].Content = []byte("x")
			}
		}
		if err := req.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestUpdateEndpointAbsentOnStaticBackends(t *testing.T) {
	// A backend that does not implement LiveBackend must 404 the admin
	// path (the fake backend of the handler suite is static).
	h := NewHandler(&fakeBackend{})
	w := do(t, h, http.MethodPost, PathAdminUpdate, `{"remove":[1]}`)
	wantError(t, w, http.StatusNotFound, CodeNotFound)
}
