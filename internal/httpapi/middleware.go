package httpapi

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"authtext/internal/obs"
)

// Request instrumentation: a handler built with a metric registry and/or a
// request logger is wrapped so every request (except the /v1/metrics
// scrape itself — instrumenting it would make every scrape move the very
// series it reads, and the golden fixture test relies on scrapes being
// side-effect-free) is counted, timed, logged, and stamped with a request
// ID. docs/OBSERVABILITY.md documents the conventions.

// RequestIDHeader carries the request ID: honored from the client when
// present (sanitized, capped) so IDs can propagate through proxies, minted
// otherwise, and always echoed on the response.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen caps an accepted inbound request ID.
const maxRequestIDLen = 128

// HandlerOpt customises NewHandler.
type HandlerOpt func(*handlerConfig)

type handlerConfig struct {
	reg *obs.Registry
	log *slog.Logger
}

// WithMetricsRegistry serves reg at /v1/metrics and records the request
// instruments (authtext_http_*) on it.
func WithMetricsRegistry(reg *obs.Registry) HandlerOpt {
	return func(c *handlerConfig) { c.reg = reg }
}

// WithRequestLog emits one structured log record per request to logger.
func WithRequestLog(logger *slog.Logger) HandlerOpt {
	return func(c *handlerConfig) { c.log = logger }
}

// Endpoint label values for the request metrics. Unknown paths share one
// label so request floods against random paths cannot mint unbounded
// series.
const (
	endpointOther = "other"
)

var endpointNames = map[string]string{
	PathSearch:        "search",
	PathManifest:      "manifest",
	PathHealthz:       "healthz",
	PathShardSearch:   "shards_search",
	PathShardManifest: "shards_manifest",
	PathAdminUpdate:   "admin_update",
}

func endpointForPath(path string) string {
	if name, ok := endpointNames[path]; ok {
		return name
	}
	return endpointOther
}

// Metric names and help of the request instruments.
const (
	nameRequests  = "authtext_http_requests_total"
	helpRequests  = "HTTP requests served, by endpoint and status code."
	nameLatency   = "authtext_http_request_seconds"
	helpLatency   = "HTTP request wall time (seconds), by endpoint."
	nameStage     = "authtext_search_stage_seconds"
	helpStage     = "Per-stage server cost decomposition of one search (seconds)."
	nameRespBytes = "authtext_http_response_bytes_total"
	helpRespBytes = "HTTP response body bytes written, by endpoint."
	nameFrames    = "authtext_wire_frames_total"
	helpFrames    = "Negotiable (search/manifest) response bodies served, by content type."
)

// Negotiated content-type label values of authtext_wire_frames_total.
const (
	negotiatedJSON   = "json"
	negotiatedBinary = "binary"
)

// httpInstruments holds the pre-bound request instruments of one handler.
type httpInstruments struct {
	reg        *obs.Registry
	latency    map[string]*obs.Histogram
	respBytes  map[string]*obs.Counter
	wireEncode *obs.Histogram
	frames     map[string]*obs.Counter
}

// newHTTPInstruments pre-registers every series the handler can emit for
// its registered endpoints, so the catalog is complete (zero-valued) from
// the first scrape and the hot path never takes the registry lock for
// latency observations.
func newHTTPInstruments(reg *obs.Registry, endpoints []string) *httpInstruments {
	ins := &httpInstruments{
		reg:       reg,
		latency:   make(map[string]*obs.Histogram, len(endpoints)+1),
		respBytes: make(map[string]*obs.Counter, len(endpoints)+1),
	}
	for _, ep := range append(endpoints, endpointOther) {
		ins.latency[ep] = reg.Histogram(nameLatency, helpLatency, obs.DefLatencyBuckets, obs.L("endpoint", ep))
		ins.respBytes[ep] = reg.Counter(nameRespBytes, helpRespBytes, obs.L("endpoint", ep))
		reg.Counter(nameRequests, helpRequests, obs.L("endpoint", ep), obs.L("code", "200"))
	}
	ins.wireEncode = reg.Histogram(nameStage, helpStage, obs.DefLatencyBuckets, obs.L("stage", "wire_encode"))
	ins.frames = map[string]*obs.Counter{
		negotiatedJSON:   reg.Counter(nameFrames, helpFrames, obs.L("content_type", negotiatedJSON)),
		negotiatedBinary: reg.Counter(nameFrames, helpFrames, obs.L("content_type", negotiatedBinary)),
	}
	return ins
}

func (ins *httpInstruments) observe(endpoint string, rr *respRecorder, wall time.Duration) {
	// Status codes are a small dynamic set, so the counter is looked up per
	// request (one mutex-guarded map hit); latency handles are pre-bound.
	ins.reg.Counter(nameRequests, helpRequests,
		obs.L("endpoint", endpoint), obs.L("code", strconv.Itoa(rr.status))).Inc()
	ins.latency[endpoint].Observe(wall.Seconds())
	ins.respBytes[endpoint].Add(uint64(rr.bytes))
	if rr.encode > 0 {
		ins.wireEncode.Observe(rr.encode.Seconds())
	}
	if c := ins.frames[rr.negotiated]; c != nil {
		c.Inc()
	}
}

// respRecorder captures what the wrapped handler wrote: final status, body
// bytes, and the time writeJSON spent JSON-encoding (the wire_encode
// stage).
type respRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
	encode time.Duration
	// negotiated is the content type of a negotiable (search/manifest)
	// success body — "json" or "binary" — and empty for everything else
	// (errors, healthz, updates), which the frames counter ignores.
	negotiated string
}

func (rr *respRecorder) WriteHeader(code int) {
	if rr.status == 0 {
		rr.status = code
	}
	rr.ResponseWriter.WriteHeader(code)
}

func (rr *respRecorder) Write(p []byte) (int, error) {
	if rr.status == 0 {
		rr.status = http.StatusOK
	}
	n, err := rr.ResponseWriter.Write(p)
	rr.bytes += n
	return n, err
}

// Unwrap exposes the wrapped writer to http.ResponseController, so
// Flusher/Hijacker/deadline capabilities of the underlying connection
// survive the instrumentation wrap.
func (rr *respRecorder) Unwrap() http.ResponseWriter { return rr.ResponseWriter }

// instrument wraps next with request-ID handling plus (when configured)
// metrics and logging.
func instrument(next http.Handler, ins *httpInstruments, logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ins != nil && r.URL.Path == PathMetrics {
			// A registry is mounted here: serve the scrape uninstrumented.
			// Without one the path is an ordinary 404 and is logged and
			// stamped like any other unknown path.
			next.ServeHTTP(w, r)
			return
		}
		id := requestID(r)
		w.Header().Set(RequestIDHeader, id)
		rr := &respRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rr, r)
		wall := time.Since(start)
		if rr.status == 0 {
			// Nothing was written; net/http sends 200 on return.
			rr.status = http.StatusOK
		}
		endpoint := endpointForPath(r.URL.Path)
		if ins != nil {
			ins.observe(endpoint, rr, wall)
		}
		if logger != nil {
			logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("endpoint", endpoint),
				slog.Int("status", rr.status),
				slog.Int("bytes", rr.bytes),
				slog.Duration("duration", wall),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

// requestID returns the inbound X-Request-ID when it is usable (printable
// ASCII, bounded length), or mints a fresh 16-hex-digit ID.
func requestID(r *http.Request) string {
	if id := r.Header.Get(RequestIDHeader); id != "" && len(id) <= maxRequestIDLen && printableASCII(id) {
		return id
	}
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(buf[:])
}

func printableASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x21 || s[i] > 0x7e {
			return false
		}
	}
	return true
}
