package sig

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHasherSizes(t *testing.T) {
	for _, size := range []int{8, 16, 20, 32} {
		h, err := NewHasher(size)
		if err != nil {
			t.Fatalf("NewHasher(%d): %v", size, err)
		}
		if got := len(h.Sum([]byte("hello"))); got != size {
			t.Errorf("size %d: digest length %d", size, got)
		}
	}
}

func TestHasherRejectsBadSizes(t *testing.T) {
	for _, size := range []int{-1, 0, 7, 33, 100} {
		if _, err := NewHasher(size); err == nil {
			t.Errorf("NewHasher(%d) succeeded, want error", size)
		}
	}
}

func TestMustHasherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustHasher(0) did not panic")
		}
	}()
	MustHasher(0)
}

func TestSumConcatMatchesSum(t *testing.T) {
	h := MustHasher(16)
	a, b, c := []byte("one"), []byte("two"), []byte("three")
	joined := append(append(append([]byte{}, a...), b...), c...)
	if !bytes.Equal(h.SumConcat(a, b, c), h.Sum(joined)) {
		t.Fatal("SumConcat differs from Sum of concatenation")
	}
}

func TestSumDeterministicAndDistinct(t *testing.T) {
	h := MustHasher(16)
	if !bytes.Equal(h.Sum([]byte("x")), h.Sum([]byte("x"))) {
		t.Fatal("hash not deterministic")
	}
	if bytes.Equal(h.Sum([]byte("x")), h.Sum([]byte("y"))) {
		t.Fatal("distinct inputs hash equal")
	}
}

func TestRSASignVerify(t *testing.T) {
	s, err := NewRSASigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 128 {
		t.Fatalf("RSA-1024 signature size = %d, want 128", s.Size())
	}
	msg := []byte("the query result is correct")
	sigBytes, err := s.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigBytes) != 128 {
		t.Fatalf("signature length %d, want 128", len(sigBytes))
	}
	v := s.Verifier()
	if err := v.Verify(msg, sigBytes); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	if err := v.Verify([]byte("tampered"), sigBytes); err == nil {
		t.Fatal("tampered message accepted")
	}
	bad := append([]byte{}, sigBytes...)
	bad[0] ^= 0xff
	if err := v.Verify(msg, bad); err == nil {
		t.Fatal("tampered signature accepted")
	}
}

func TestRSAMarshalRoundTrip(t *testing.T) {
	s, err := NewRSASigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("published key")
	sigBytes, err := s.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	der, err := s.Verifier().(*RSAVerifier).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ParseRSAVerifier(der)
	if err != nil {
		t.Fatal(err)
	}
	if err := v2.Verify(msg, sigBytes); err != nil {
		t.Fatalf("round-tripped verifier rejected signature: %v", err)
	}
}

func TestParseRSAVerifierRejectsGarbage(t *testing.T) {
	if _, err := ParseRSAVerifier([]byte("not a key")); err == nil {
		t.Fatal("garbage key parsed")
	}
}

func TestRSARejectsTinyKeys(t *testing.T) {
	if _, err := NewRSASigner(256); err == nil {
		t.Fatal("256-bit RSA accepted")
	}
}

func TestHMACSignVerify(t *testing.T) {
	s, err := NewHMACSigner([]byte("secret"), 128)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 128 {
		t.Fatalf("size = %d, want 128", s.Size())
	}
	msg := []byte("fast path")
	sigBytes, err := s.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigBytes) != 128 {
		t.Fatalf("signature length %d, want 128", len(sigBytes))
	}
	v := s.Verifier()
	if err := v.Verify(msg, sigBytes); err != nil {
		t.Fatal(err)
	}
	if err := v.Verify([]byte("other"), sigBytes); err == nil {
		t.Fatal("tampered message accepted")
	}
}

func TestHMACRejectsBadConfig(t *testing.T) {
	if _, err := NewHMACSigner(nil, 128); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := NewHMACSigner([]byte("k"), 16); err == nil {
		t.Fatal("size below tag length accepted")
	}
}

func TestHMACSignaturePropertyDistinctMessages(t *testing.T) {
	s, err := NewHMACSigner([]byte("property"), 32)
	if err != nil {
		t.Fatal(err)
	}
	v := s.Verifier()
	f := func(a, b []byte) bool {
		sa, err := s.Sign(a)
		if err != nil {
			return false
		}
		if v.Verify(a, sa) != nil {
			return false
		}
		if bytes.Equal(a, b) {
			return true
		}
		return v.Verify(b, sa) != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
