package sig

import (
	"crypto"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
)

// DefaultHashSize is the digest size in bytes (128 bits, Table 1).
const DefaultHashSize = 16

// DefaultRSABits is the default RSA modulus size (1024 bits, Table 1).
const DefaultRSABits = 1024

// Hasher computes truncated SHA-256 digests of a fixed size.
// The zero value is not usable; construct with NewHasher.
type Hasher struct {
	size int
}

// NewHasher returns a Hasher producing size-byte digests.
// size must be in [8, 32]; the paper's default is 16 (128 bits).
func NewHasher(size int) (Hasher, error) {
	if size < 8 || size > sha256.Size {
		return Hasher{}, fmt.Errorf("sig: hash size %d outside [8,32]", size)
	}
	return Hasher{size: size}, nil
}

// MustHasher is NewHasher for statically known sizes; it panics on error.
func MustHasher(size int) Hasher {
	h, err := NewHasher(size)
	if err != nil {
		panic(err)
	}
	return h
}

// Size returns the digest size in bytes.
func (h Hasher) Size() int { return h.size }

// Sum returns the truncated SHA-256 digest of data.
func (h Hasher) Sum(data []byte) []byte {
	d := sha256.Sum256(data)
	out := make([]byte, h.size)
	copy(out, d[:])
	return out
}

// SumConcat hashes the concatenation of the given byte slices without
// materialising the concatenation.
func (h Hasher) SumConcat(parts ...[]byte) []byte {
	st := sha256.New()
	for _, p := range parts {
		st.Write(p)
	}
	d := st.Sum(nil)
	return d[:h.size]
}

// Signer produces signatures over messages.
type Signer interface {
	// Sign returns a signature over msg.
	Sign(msg []byte) ([]byte, error)
	// Verifier returns the verification half of the key pair.
	Verifier() Verifier
	// Size returns the signature size in bytes.
	Size() int
}

// Verifier checks signatures produced by the corresponding Signer.
type Verifier interface {
	// Verify returns nil iff sigBytes is a valid signature over msg.
	Verify(msg, sigBytes []byte) error
	// Size returns the signature size in bytes.
	Size() int
}

// ErrBadSignature is returned when signature verification fails.
var ErrBadSignature = errors.New("sig: signature verification failed")

// ---------------------------------------------------------------------------
// RSA

// RSASigner signs with RSA PKCS#1 v1.5 over SHA-256.
type RSASigner struct {
	key *rsa.PrivateKey
}

// NewRSASigner generates a fresh RSA key of the given modulus size.
func NewRSASigner(bits int) (*RSASigner, error) {
	if bits < 512 {
		return nil, fmt.Errorf("sig: rsa modulus %d too small", bits)
	}
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("sig: rsa keygen: %w", err)
	}
	return &RSASigner{key: key}, nil
}

// Sign implements Signer.
func (s *RSASigner) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	return rsa.SignPKCS1v15(rand.Reader, s.key, crypto.SHA256, digest[:])
}

// Verifier implements Signer.
func (s *RSASigner) Verifier() Verifier { return &RSAVerifier{pub: &s.key.PublicKey} }

// Size implements Signer.
func (s *RSASigner) Size() int { return s.key.Size() }

// RSAVerifier verifies RSA PKCS#1 v1.5 signatures.
type RSAVerifier struct {
	pub *rsa.PublicKey
}

// Verify implements Verifier.
func (v *RSAVerifier) Verify(msg, sigBytes []byte) error {
	digest := sha256.Sum256(msg)
	if err := rsa.VerifyPKCS1v15(v.pub, crypto.SHA256, digest[:], sigBytes); err != nil {
		return ErrBadSignature
	}
	return nil
}

// Size implements Verifier.
func (v *RSAVerifier) Size() int { return v.pub.Size() }

// Marshal encodes the public key in PKIX DER form, for publication.
func (v *RSAVerifier) Marshal() ([]byte, error) {
	return x509.MarshalPKIXPublicKey(v.pub)
}

// ParseRSAVerifier decodes a PKIX DER public key produced by Marshal.
func ParseRSAVerifier(der []byte) (*RSAVerifier, error) {
	pub, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("sig: parse public key: %w", err)
	}
	rpub, ok := pub.(*rsa.PublicKey)
	if !ok {
		return nil, errors.New("sig: public key is not RSA")
	}
	return &RSAVerifier{pub: rpub}, nil
}

// ---------------------------------------------------------------------------
// Keyed-hash mock signer (experiments only)

// HMACSigner is a fast Signer for large-scale experiment builds. It emits
// HMAC-SHA256 tags padded to an RSA-compatible size so that VO sizes match
// the RSA configuration byte-for-byte. It is a shared-key scheme and is NOT
// publicly verifiable: anyone holding the key (including the search engine
// in a real deployment) could forge signatures. Use only for benchmarking;
// the facade and the examples default to RSA.
type HMACSigner struct {
	key  []byte
	size int
}

// NewHMACSigner creates a keyed-hash signer whose signatures are size bytes
// (size >= 32; the tag is padded with zeros to size).
func NewHMACSigner(key []byte, size int) (*HMACSigner, error) {
	if size < sha256.Size {
		return nil, fmt.Errorf("sig: hmac signature size %d < %d", size, sha256.Size)
	}
	if len(key) == 0 {
		return nil, errors.New("sig: empty hmac key")
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &HMACSigner{key: k, size: size}, nil
}

// Sign implements Signer.
func (s *HMACSigner) Sign(msg []byte) ([]byte, error) {
	mac := hmac.New(sha256.New, s.key)
	mac.Write(msg)
	out := make([]byte, s.size)
	copy(out, mac.Sum(nil))
	return out, nil
}

// Verifier implements Signer.
func (s *HMACSigner) Verifier() Verifier { return &hmacVerifier{s} }

// Size implements Signer.
func (s *HMACSigner) Size() int { return s.size }

type hmacVerifier struct{ s *HMACSigner }

func (v *hmacVerifier) Verify(msg, sigBytes []byte) error {
	want, _ := v.s.Sign(msg)
	if !hmac.Equal(want, sigBytes) {
		return ErrBadSignature
	}
	return nil
}

func (v *hmacVerifier) Size() int { return v.s.size }
