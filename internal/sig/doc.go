// Package sig provides the cryptographic primitives of the authentication
// framework: a truncated one-way hash (|h| = 128 bits by default, matching
// Table 1 of the paper) and digital signatures (RSA-1024 PKCS#1 v1.5,
// |sign| = 1024 bits by default).
//
// In the VO protocol, sig is where trust bottoms out. The owner signs the
// Merkle roots (or, in dictionary mode, the single dictionary root) and
// the collection manifest with the private key; the client needs nothing
// but the corresponding Verifier — shipped inside the ATCX export blob
// and over /v1/manifest — to check everything a server ever sends it. The
// Hasher is shared by both sides so digests recomputed during
// verification are bit-identical to the ones the owner committed to.
//
// Signer/Verifier are interfaces so that large-scale experiment builds can
// substitute a fast keyed-hash signer with identical signature sizes (the
// substitution is documented in DESIGN.md §3.7). Only RSA-signed
// collections can serve remote clients: the keyed-hash signer has no
// public half to publish.
package sig
