package sig

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Verifier serialisation for snapshot persistence: the public half of the
// owner's key pair travels inside the snapshot so a warm-started server can
// hand clients the same verification material the owner published.

// maxHMACSignatureSize bounds the deserialised HMAC tag width: signatures
// mimic RSA sizes (128–512 bytes), so 4 KiB leaves ample headroom.
const maxHMACSignatureSize = 4096

// Verifier kinds understood by MarshalVerifier / ParseVerifier.
const (
	// VerifierRSA is an RSA public key in PKIX DER form.
	VerifierRSA uint8 = 1
	// VerifierHMAC is the keyed-hash benchmark verifier. Its encoding
	// embeds the shared key: anyone holding the snapshot can forge
	// signatures, exactly as anyone holding the key always could. It exists
	// so benchmark builds round-trip; production snapshots use RSA.
	VerifierHMAC uint8 = 2
)

// MarshalVerifier encodes a Verifier for embedding in a snapshot.
func MarshalVerifier(v Verifier) (kind uint8, data []byte, err error) {
	switch v := v.(type) {
	case *RSAVerifier:
		der, err := v.Marshal()
		if err != nil {
			return 0, nil, err
		}
		return VerifierRSA, der, nil
	case *hmacVerifier:
		data := binary.BigEndian.AppendUint32(nil, uint32(v.s.size))
		data = append(data, v.s.key...)
		return VerifierHMAC, data, nil
	default:
		return 0, nil, fmt.Errorf("sig: cannot marshal verifier of type %T", v)
	}
}

// ParseVerifier decodes a Verifier produced by MarshalVerifier.
func ParseVerifier(kind uint8, data []byte) (Verifier, error) {
	switch kind {
	case VerifierRSA:
		return ParseRSAVerifier(data)
	case VerifierHMAC:
		if len(data) < 5 {
			return nil, errors.New("sig: truncated hmac verifier")
		}
		size := int(binary.BigEndian.Uint32(data))
		// The size field is attacker-controlled (snapshots travel untrusted
		// channels) and every Verify allocates a tag of this size: bound it
		// well above any plausible signature width but far below harm.
		if size > maxHMACSignatureSize {
			return nil, fmt.Errorf("sig: hmac signature size %d exceeds %d", size, maxHMACSignatureSize)
		}
		s, err := NewHMACSigner(data[4:], size)
		if err != nil {
			return nil, err
		}
		return s.Verifier(), nil
	default:
		return nil, fmt.Errorf("sig: unknown verifier kind %d", kind)
	}
}
