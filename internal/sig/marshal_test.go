package sig

import (
	"encoding/binary"
	"testing"
)

func TestMarshalVerifierRoundTripRSA(t *testing.T) {
	s, err := NewRSASigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	kind, data, err := MarshalVerifier(s.Verifier())
	if err != nil {
		t.Fatal(err)
	}
	if kind != VerifierRSA {
		t.Fatalf("kind = %d", kind)
	}
	v, err := ParseVerifier(kind, data)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("round trip")
	sigBytes, err := s.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(msg, sigBytes); err != nil {
		t.Fatalf("parsed verifier rejected a valid signature: %v", err)
	}
}

func TestMarshalVerifierRoundTripHMAC(t *testing.T) {
	s, err := NewHMACSigner([]byte("key material"), 128)
	if err != nil {
		t.Fatal(err)
	}
	kind, data, err := MarshalVerifier(s.Verifier())
	if err != nil {
		t.Fatal(err)
	}
	if kind != VerifierHMAC {
		t.Fatalf("kind = %d", kind)
	}
	v, err := ParseVerifier(kind, data)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("round trip")
	sigBytes, err := s.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(msg, sigBytes); err != nil {
		t.Fatalf("parsed verifier rejected a valid tag: %v", err)
	}
	if err := v.Verify([]byte("other"), sigBytes); err == nil {
		t.Fatal("parsed verifier accepted a wrong-message tag")
	}
}

func TestParseVerifierRejectsHostileInput(t *testing.T) {
	if _, err := ParseVerifier(99, []byte("x")); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ParseVerifier(VerifierHMAC, []byte{0, 0}); err == nil {
		t.Error("truncated hmac verifier accepted")
	}
	if _, err := ParseVerifier(VerifierRSA, []byte("not der")); err == nil {
		t.Error("garbage DER accepted")
	}
	// An attacker-controlled size field must not drive allocation: every
	// later Verify would allocate a tag of this width.
	huge := binary.BigEndian.AppendUint32(nil, 0xfffffff0)
	huge = append(huge, []byte("key")...)
	if _, err := ParseVerifier(VerifierHMAC, huge); err == nil {
		t.Error("4 GB hmac signature size accepted")
	}
}
