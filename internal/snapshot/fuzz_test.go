package snapshot

import (
	"bytes"
	"encoding/binary"
	"testing"

	"authtext/internal/engine"
	"authtext/internal/index"
	"authtext/internal/sig"
)

// fuzzSeedSnapshot builds a deliberately small collection (so the seed
// corpus stays compact) and serialises it.
func fuzzSeedSnapshot(f *testing.F) []byte {
	f.Helper()
	signer, err := sig.NewHMACSigner([]byte("fuzz"), 128)
	if err != nil {
		f.Fatal(err)
	}
	texts := []string{
		"merkle tree authenticates the inverted index",
		"the inverted index stores impact entries by frequency",
		"clients verify the merkle tree root against the signature",
		"impact entries by frequency order the inverted lists",
	}
	docs := make([]index.Document, len(texts))
	for i, s := range texts {
		docs[i] = index.Document{Content: []byte(s)}
	}
	col, err := engine.BuildCollection(docs, engine.DefaultConfig(signer))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, col); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzOpenSnapshot exercises the snapshot parser with arbitrary bytes. A
// snapshot may arrive over an untrusted channel, so Open is a security
// boundary: truncated, bit-flipped or length-inflated inputs must produce
// an error — never a panic, never an unbounded allocation. Anything it
// accepts must re-serialise and reopen (the format is canonical).
func FuzzOpenSnapshot(f *testing.F) {
	valid := fuzzSeedSnapshot(f)
	f.Add(valid)
	for _, n := range []int{0, 4, 8, 24, len(valid) / 2, len(valid) - 1} {
		f.Add(valid[:n])
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)
	inflated := append([]byte(nil), valid...)
	binary.BigEndian.PutUint64(inflated[8+8:], 1<<56) // first section length
	f.Add(inflated)
	f.Add([]byte("ATSN"))
	f.Add([]byte("ATSN\x00\x01\x00\x07"))

	f.Fuzz(func(t *testing.T, data []byte) {
		col, err := Open(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted inputs must be fully self-consistent: re-serialise and
		// reopen without error.
		var buf bytes.Buffer
		if err := Write(&buf, col); err != nil {
			t.Fatalf("accepted snapshot failed to re-serialise: %v", err)
		}
		if _, err := Open(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-serialised snapshot failed to reopen: %v", err)
		}
	})
}
