// Package snapshot persists a fully built authenticated collection to a
// versioned, section-based binary format, and reopens it without touching
// the signer — the owner builds and signs once, then any number of
// (untrusted) servers warm-start from the artifact (the publication model
// of §2 of the paper).
//
// Container layout (docs/SNAPSHOT.md has the full specification):
//
//	header:  magic "ATSN" | u16 version | u16 section count
//	section: u16 id | u16 reserved(0) | u32 crc32(payload) | u64 length | payload
//
// Sections appear exactly once each, in ascending id order, with nothing
// after the last. Every payload carries an IEEE CRC-32, so accidental
// corruption fails fast at open; deliberate tampering is the client's
// manifest signature check's problem, not ours — a snapshot that decodes
// cleanly but lies about its contents produces verification objects that
// clients reject.
//
// Decoding is hostile-input-safe: the format version is checked before
// anything else, section payloads are read in bounded chunks so inflated
// length fields cannot force huge allocations, and every count inside a
// section is validated against the (signed) manifest before use.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"authtext/internal/core"
	"authtext/internal/engine"
	"authtext/internal/index"
	"authtext/internal/sig"
	"authtext/internal/store"
)

// Version is the current format version. Open rejects every other value.
const Version = 1

const magic = "ATSN"

// Section identifiers, in file order.
const (
	secManifest uint16 = 1 // manifest bytes + manifest signature
	secPubKey   uint16 = 2 // verifier kind + encoding
	secIndex    uint16 = 3 // inverted index (dictionary, lists, vectors, content)
	secStore    uint16 = 4 // device parameters + raw block contents
	secLayout   uint16 = 5 // extent tables
	secAuth     uint16 = 6 // per-list signatures, term roots, doc hashes, authority
	secStats    uint16 = 7 // space report + build statistics
)

var sectionOrder = []uint16{secManifest, secPubKey, secIndex, secStore, secLayout, secAuth, secStats}

// ErrVersion reports a well-formed header whose format version this build
// does not speak.
var ErrVersion = errors.New("snapshot: unsupported format version")

// Write serialises the collection. The output is deterministic for a given
// collection (section order is fixed and every codec is canonical).
func Write(w io.Writer, col *engine.Collection) error {
	st := col.ExportState()
	kind, pub, err := sig.MarshalVerifier(st.Verifier)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	// The index codec stores term names behind u16 lengths; refuse to emit
	// an artifact that could not be reopened rather than truncate silently.
	for t := 0; t < st.Index.M(); t++ {
		if name := st.Index.Name(index.TermID(t)); len(name) > 65535 {
			return fmt.Errorf("snapshot: term %d name is %d bytes, max 65535", t, len(name))
		}
	}

	manifest := appendSized32(nil, st.Manifest.Encode())
	manifest = appendSized32(manifest, st.ManifestSig)

	pubkey := append([]byte{kind}, appendSized32(nil, pub)...)

	idx := st.Index.AppendBinary(nil)

	dev := store.AppendParams(nil, st.StoreParams)
	dev = binary.BigEndian.AppendUint64(dev, uint64(len(st.DeviceData)))
	dev = append(dev, st.DeviceData...)

	layout := appendExtents(nil, st.Layout.Plain)
	layout = appendExtents(layout, st.Layout.ChainTRA)
	layout = appendExtents(layout, st.Layout.ChainTNRA)
	layout = appendExtents(layout, st.Layout.Doc)

	var auth []byte
	if st.Manifest.DictMode {
		auth = append(auth, 0)
	} else {
		auth = append(auth, 1)
		for k := range st.TermSigs {
			for _, s := range st.TermSigs[k] {
				auth = appendSized32(auth, s)
			}
		}
	}
	for k := range st.TermRoots {
		for _, r := range st.TermRoots[k] {
			auth = append(auth, r...)
		}
	}
	for _, h := range st.DocHash {
		auth = append(auth, h...)
	}
	if st.Manifest.Boosted {
		for _, a := range st.Authority {
			auth = binary.BigEndian.AppendUint32(auth, math.Float32bits(a))
		}
	}

	stats := make([]byte, 0, 7*8+12)
	for _, v := range []int64{
		st.Space.ContentBytes, st.Space.PlainListBytes, st.Space.ChainTRABytes,
		st.Space.ChainTNRABytes, st.Space.DocRecordBytes, st.Space.TermSigBytes,
		st.Space.DeviceBytes,
	} {
		stats = binary.BigEndian.AppendUint64(stats, uint64(v))
	}
	stats = binary.BigEndian.AppendUint32(stats, uint32(st.Signatures))
	stats = binary.BigEndian.AppendUint64(stats, uint64(st.BuildTime.Nanoseconds()))

	payloads := [][]byte{manifest, pubkey, idx, dev, layout, auth, stats}

	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := make([]byte, 0, 8)
	hdr = append(hdr, magic...)
	hdr = binary.BigEndian.AppendUint16(hdr, Version)
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(len(payloads)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	for i, payload := range payloads {
		sh := make([]byte, 0, 16)
		sh = binary.BigEndian.AppendUint16(sh, sectionOrder[i])
		sh = binary.BigEndian.AppendUint16(sh, 0)
		sh = binary.BigEndian.AppendUint32(sh, crc32.ChecksumIEEE(payload))
		sh = binary.BigEndian.AppendUint64(sh, uint64(len(payload)))
		if _, err := bw.Write(sh); err != nil {
			return err
		}
		if _, err := bw.Write(payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Open reads a snapshot and reconstructs the serving collection. The input
// is untrusted: a malformed or truncated snapshot errors out (never
// panics), and a decodable-but-tampered one produces a collection whose
// responses fail client verification.
func Open(r io.ReaderAt) (*engine.Collection, error) {
	br := bufio.NewReaderSize(io.NewSectionReader(r, 0, math.MaxInt64), 1<<20)

	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: reading header: %w", err)
	}
	if string(hdr[:4]) != magic {
		return nil, errors.New("snapshot: not a snapshot (bad magic)")
	}
	if v := binary.BigEndian.Uint16(hdr[4:]); v != Version {
		return nil, fmt.Errorf("%w: %d (this build speaks %d)", ErrVersion, v, Version)
	}
	if n := binary.BigEndian.Uint16(hdr[6:]); int(n) != len(sectionOrder) {
		return nil, fmt.Errorf("snapshot: %d sections, format v%d has %d", n, Version, len(sectionOrder))
	}

	payloads := make(map[uint16][]byte, len(sectionOrder))
	for _, wantID := range sectionOrder {
		var sh [16]byte
		if _, err := io.ReadFull(br, sh[:]); err != nil {
			return nil, fmt.Errorf("snapshot: reading section header: %w", err)
		}
		id := binary.BigEndian.Uint16(sh[0:])
		if id != wantID {
			return nil, fmt.Errorf("snapshot: section %d out of order (want %d)", id, wantID)
		}
		if binary.BigEndian.Uint16(sh[2:]) != 0 {
			return nil, fmt.Errorf("snapshot: section %d has non-zero reserved field", id)
		}
		wantCRC := binary.BigEndian.Uint32(sh[4:])
		length := binary.BigEndian.Uint64(sh[8:])
		payload, err := readPayload(br, length)
		if err != nil {
			return nil, fmt.Errorf("snapshot: section %d: %w", id, err)
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return nil, fmt.Errorf("snapshot: section %d fails its checksum (corrupted snapshot)", id)
		}
		payloads[id] = payload
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, errors.New("snapshot: trailing bytes after last section")
	}
	return restoreFromPayloads(payloads, false)
}

// restoreFromPayloads decodes the (CRC-checked) section payloads into a
// serving collection. With share set, large structures — the device data,
// signature and hash tables — alias the payload bytes instead of copying
// them (the zero-copy half of OpenMapped); the payloads must then outlive
// the collection.
func restoreFromPayloads(payloads map[uint16][]byte, share bool) (*engine.Collection, error) {
	st := &engine.State{ShareDeviceData: share}

	// Manifest first: it is the (signed) source of truth every later
	// section is cross-checked against.
	// Manifest and public key are always copied, even in share mode: they
	// are small, and the verification client built from them may outlive
	// the mapping (it has no reason to pin pages).
	mr := byteReader{b: payloads[secManifest]}
	manifestRaw := mr.sized32()
	st.ManifestSig = mr.sized32()
	if err := mr.done("manifest section"); err != nil {
		return nil, err
	}
	manifest, err := core.DecodeManifest(manifestRaw)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	st.Manifest = manifest

	kr := byteReader{b: payloads[secPubKey]}
	kind := kr.u8()
	pub := kr.sized32()
	if err := kr.done("public-key section"); err != nil {
		return nil, err
	}
	st.Verifier, err = sig.ParseVerifier(kind, pub)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}

	if share {
		// Mapped open: document content aliases the mapped pages like the
		// device data does, so the index decode is metadata-speed.
		st.Index, err = index.DecodeBinaryShared(payloads[secIndex])
	} else {
		st.Index, err = index.DecodeBinary(payloads[secIndex])
	}
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}

	devPayload := payloads[secStore]
	if len(devPayload) < store.ParamsEncodedSize+8 {
		return nil, errors.New("snapshot: truncated store section")
	}
	st.StoreParams, err = store.DecodeParams(devPayload)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	dataLen := binary.BigEndian.Uint64(devPayload[store.ParamsEncodedSize:])
	data := devPayload[store.ParamsEncodedSize+8:]
	if uint64(len(data)) != dataLen {
		return nil, errors.New("snapshot: store section length disagrees with device size")
	}
	st.DeviceData = data

	lr := byteReader{b: payloads[secLayout]}
	st.Layout.Plain = lr.extents()
	st.Layout.ChainTRA = lr.extents()
	st.Layout.ChainTNRA = lr.extents()
	st.Layout.Doc = lr.extents()
	if err := lr.done("layout section"); err != nil {
		return nil, err
	}

	n, m, hashSize := int(manifest.N), int(manifest.M), int(manifest.HashSize)
	ar := byteReader{b: payloads[secAuth], share: share}
	switch ar.u8() {
	case 0:
		if !manifest.DictMode {
			return nil, errors.New("snapshot: auth section lacks signatures outside dictionary mode")
		}
	case 1:
		if manifest.DictMode {
			return nil, errors.New("snapshot: auth section carries signatures in dictionary mode")
		}
		for k := range st.TermSigs {
			st.TermSigs[k] = ar.sliceTable(m, -1)
		}
	default:
		return nil, errors.New("snapshot: bad signature-mode byte in auth section")
	}
	for k := range st.TermRoots {
		st.TermRoots[k] = ar.sliceTable(m, hashSize)
	}
	st.DocHash = ar.sliceTable(n, hashSize)
	if manifest.Boosted && ar.err == nil {
		// Same pre-allocation guard as sliceTable: n comes from the
		// untrusted manifest and must be backed by payload bytes.
		if n > (len(ar.b)-ar.off)/4 {
			ar.err = errors.New("authority count exceeds section payload")
		} else {
			st.Authority = make([]float32, n)
			for d := range st.Authority {
				st.Authority[d] = math.Float32frombits(ar.u32())
			}
		}
	}
	if err := ar.done("auth section"); err != nil {
		return nil, err
	}

	sr := byteReader{b: payloads[secStats]}
	space := [7]int64{}
	for i := range space {
		space[i] = int64(sr.u64())
	}
	st.Space = engine.SpaceReport{
		ContentBytes: space[0], PlainListBytes: space[1], ChainTRABytes: space[2],
		ChainTNRABytes: space[3], DocRecordBytes: space[4], TermSigBytes: space[5],
		DeviceBytes: space[6],
	}
	st.Signatures = int(sr.u32())
	st.BuildTime = time.Duration(sr.u64())
	if err := sr.done("stats section"); err != nil {
		return nil, err
	}

	col, err := engine.Restore(st)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	// Fail fast on a snapshot whose own sections disagree about identity.
	// This is a convenience, not the trust root: a forger can re-sign with
	// their own key, and only the client's out-of-band copy of the owner's
	// key catches that.
	if err := core.VerifyManifest(manifest, st.ManifestSig, st.Verifier); err != nil {
		return nil, fmt.Errorf("snapshot: embedded manifest signature: %w", err)
	}
	return col, nil
}

// readPayload reads exactly n declared bytes in bounded chunks, so a
// hostile length field inflates allocation only as far as real input bytes
// back it.
func readPayload(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	if n > math.MaxInt64/2 {
		return nil, fmt.Errorf("section length %d unreasonable", n)
	}
	buf := make([]byte, 0, min(n, chunk))
	for uint64(len(buf)) < n {
		take := n - uint64(len(buf))
		if take > chunk {
			take = chunk
		}
		old := len(buf)
		buf = append(buf, make([]byte, take)...)
		if _, err := io.ReadFull(r, buf[old:]); err != nil {
			return nil, fmt.Errorf("truncated payload (declared %d bytes): %w", n, err)
		}
	}
	return buf, nil
}

func appendSized32(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

func appendExtents(b []byte, exts []store.Extent) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(exts)))
	for _, e := range exts {
		b = binary.BigEndian.AppendUint64(b, uint64(e.Start))
		b = binary.BigEndian.AppendUint32(b, uint32(e.Blocks))
		b = binary.BigEndian.AppendUint64(b, uint64(e.Length))
	}
	return b
}

// byteReader is a bounds-checked reader over a section payload. Errors
// accumulate; done reports the first one (or trailing garbage). With share
// set, variable-length reads alias the payload instead of copying.
type byteReader struct {
	b     []byte
	off   int
	err   error
	share bool
}

func (r *byteReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) || r.off+n < r.off {
		r.err = errors.New("truncated section")
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *byteReader) u8() uint8 {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (r *byteReader) u32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint32(v)
}

func (r *byteReader) u64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

// sized32 reads a u32-length-prefixed byte string (copied out, or aliased
// in share mode).
func (r *byteReader) sized32() []byte {
	n := int(r.u32())
	v := r.take(n)
	if v == nil {
		return nil
	}
	if r.share {
		return v
	}
	out := make([]byte, n)
	copy(out, v)
	return out
}

// sliceTable reads count entries: fixed width bytes each, or u32-prefixed
// when width < 0.
func (r *byteReader) sliceTable(count, width int) [][]byte {
	if r.err != nil {
		return nil
	}
	perEntry := width
	if width < 0 {
		perEntry = 4
	}
	if perEntry > 0 && count > (len(r.b)-r.off)/perEntry {
		r.err = errors.New("table count exceeds section payload")
		return nil
	}
	out := make([][]byte, count)
	for i := range out {
		if width < 0 {
			out[i] = r.sized32()
		} else {
			v := r.take(width)
			if v == nil {
				return nil
			}
			if r.share {
				out[i] = v
			} else {
				out[i] = append([]byte(nil), v...)
			}
		}
	}
	return out
}

// extents reads a u32-count extent table.
func (r *byteReader) extents() []store.Extent {
	count := int(r.u32())
	if r.err != nil {
		return nil
	}
	const extSize = 8 + 4 + 8
	if count > (len(r.b)-r.off)/extSize {
		r.err = errors.New("extent count exceeds section payload")
		return nil
	}
	out := make([]store.Extent, count)
	for i := range out {
		out[i] = store.Extent{
			Start:  store.Addr(r.u64()),
			Blocks: int32(r.u32()),
			Length: int64(r.u64()),
		}
	}
	return out
}

func (r *byteReader) done(what string) error {
	if r.err != nil {
		return fmt.Errorf("snapshot: %s: %w", what, r.err)
	}
	if r.off != len(r.b) {
		return fmt.Errorf("snapshot: %s: %d trailing bytes", what, len(r.b)-r.off)
	}
	return nil
}
