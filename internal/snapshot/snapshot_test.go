package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"

	"authtext/internal/core"
	"authtext/internal/corpus"
	"authtext/internal/engine"
	"authtext/internal/index"
	"authtext/internal/sig"
)

func buildCollection(t testing.TB, mutate func(*engine.Config)) *engine.Collection {
	t.Helper()
	signer, err := sig.NewHMACSigner([]byte("snapshot-test"), 128)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig(signer)
	if mutate != nil {
		mutate(&cfg)
	}
	col, err := engine.BuildCollection(corpus.Generate(corpus.Tiny()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func encode(t testing.TB, col *engine.Collection) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, col); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sectionRange locates a section's payload within a snapshot, returning its
// byte range and the offset of the CRC field in the section header.
func sectionRange(t testing.TB, snap []byte, id uint16) (payloadStart, payloadEnd, crcOff int) {
	t.Helper()
	off := 8
	for off < len(snap) {
		gotID := binary.BigEndian.Uint16(snap[off:])
		length := int(binary.BigEndian.Uint64(snap[off+8:]))
		if gotID == id {
			return off + 16, off + 16 + length, off + 4
		}
		off += 16 + length
	}
	t.Fatalf("section %d not found", id)
	return 0, 0, 0
}

// tamper flips one payload byte. With fixCRC the section checksum is
// recomputed, modelling an adversary who keeps the container consistent.
func tamper(t testing.TB, snap []byte, id uint16, payloadOff int, fixCRC bool) []byte {
	t.Helper()
	out := append([]byte(nil), snap...)
	start, end, crcOff := sectionRange(t, out, id)
	if start+payloadOff >= end {
		t.Fatalf("offset %d outside section %d payload", payloadOff, id)
	}
	out[start+payloadOff] ^= 0x40
	if fixCRC {
		binary.BigEndian.PutUint32(out[crcOff:], crc32.ChecksumIEEE(out[start:end]))
	}
	return out
}

func searchAndVerify(t *testing.T, col *engine.Collection, tokens []string, algo core.Algo, scheme core.Scheme) error {
	t.Helper()
	res, voBytes, _, err := col.Search(tokens, 5, algo, scheme)
	if err != nil {
		return err
	}
	_, err = col.VerifyResult(tokens, 5, res, voBytes)
	return err
}

func queryTokens(col *engine.Collection) []string {
	idx := col.Index()
	return []string{idx.Name(0), idx.Name(1)}
}

func TestRoundTripAllVariants(t *testing.T) {
	col := buildCollection(t, nil)
	snap := encode(t, col)
	reopened, err := Open(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}

	wantM, wantSig := col.Manifest()
	gotM, gotSig := reopened.Manifest()
	if !bytes.Equal(wantM.Encode(), gotM.Encode()) {
		t.Error("manifest bytes changed across the round trip")
	}
	if !bytes.Equal(wantSig, gotSig) {
		t.Error("manifest signature changed across the round trip")
	}

	tokens := queryTokens(col)
	for _, algo := range []core.Algo{core.AlgoTRA, core.AlgoTNRA} {
		for _, scheme := range []core.Scheme{core.SchemeMHT, core.SchemeCMHT} {
			if err := searchAndVerify(t, reopened, tokens, algo, scheme); err != nil {
				t.Errorf("%v-%v after reopen: %v", algo, scheme, err)
			}
			// Cross-check: the original collection accepts the reopened
			// server's answers (same manifest, same key).
			res, voBytes, _, err := reopened.Search(tokens, 5, algo, scheme)
			if err != nil {
				t.Fatalf("%v-%v: %v", algo, scheme, err)
			}
			if _, err := col.VerifyResult(tokens, 5, res, voBytes); err != nil {
				t.Errorf("%v-%v: original-build client rejected reopened server: %v", algo, scheme, err)
			}
		}
	}

	if col.Space() != reopened.Space() {
		t.Errorf("space report changed: %+v vs %+v", col.Space(), reopened.Space())
	}
	if col.BuildStats().Signatures != reopened.BuildStats().Signatures {
		t.Error("signature count changed")
	}
}

func TestRoundTripDictModeAndVocabProofs(t *testing.T) {
	col := buildCollection(t, func(cfg *engine.Config) {
		cfg.DictMode = true
		cfg.VocabProofs = true
	})
	snap := encode(t, col)
	reopened, err := Open(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	tokens := append(queryTokens(col), "zzzunknownterm")
	for _, scheme := range []core.Scheme{core.SchemeMHT, core.SchemeCMHT} {
		if err := searchAndVerify(t, reopened, tokens, core.AlgoTNRA, scheme); err != nil {
			t.Errorf("dict-mode TNRA-%v: %v", scheme, err)
		}
	}
}

func TestRoundTripBoosted(t *testing.T) {
	col := buildCollection(t, func(cfg *engine.Config) {
		docs := corpus.Generate(corpus.Tiny())
		authority := make([]float64, len(docs))
		for i := range authority {
			authority[i] = float64(i) / float64(len(authority))
		}
		cfg.Authority = authority
		cfg.Beta = 1.5
	})
	snap := encode(t, col)
	reopened, err := Open(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if err := searchAndVerify(t, reopened, queryTokens(col), core.AlgoTNRA, core.SchemeCMHT); err != nil {
		t.Errorf("boosted TNRA-CMHT: %v", err)
	}
}

func TestWriteDeterministic(t *testing.T) {
	col := buildCollection(t, nil)
	if !bytes.Equal(encode(t, col), encode(t, col)) {
		t.Fatal("two writes of the same collection differ")
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	snap := encode(t, buildCollection(t, nil))
	snap[0] ^= 0xff
	if _, err := Open(bytes.NewReader(snap)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestOpenRejectsUnknownVersion(t *testing.T) {
	snap := encode(t, buildCollection(t, nil))
	binary.BigEndian.PutUint16(snap[4:], Version+1)
	_, err := Open(bytes.NewReader(snap))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("version %d accepted (err = %v)", Version+1, err)
	}
}

func TestOpenRejectsTruncation(t *testing.T) {
	snap := encode(t, buildCollection(t, nil))
	for _, n := range []int{0, 3, 7, 8, 20, len(snap) / 4, len(snap) / 2, len(snap) - 1} {
		if _, err := Open(bytes.NewReader(snap[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestOpenRejectsTrailingBytes(t *testing.T) {
	snap := encode(t, buildCollection(t, nil))
	if _, err := Open(bytes.NewReader(append(snap, 0))); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestOpenRejectsInflatedLength(t *testing.T) {
	snap := encode(t, buildCollection(t, nil))
	_, _, crcOff := sectionRange(t, snap, secIndex)
	// The length field sits 4 bytes after the CRC; inflate it wildly. The
	// chunked reader must fail on missing bytes, not allocate 2^60.
	binary.BigEndian.PutUint64(snap[crcOff+4:], 1<<60)
	if _, err := Open(bytes.NewReader(snap)); err == nil {
		t.Fatal("inflated section length accepted")
	}
}

// TestCRCDetectsCorruption flips one byte in every section without fixing
// the checksum: open must fail each time.
func TestCRCDetectsCorruption(t *testing.T) {
	snap := encode(t, buildCollection(t, nil))
	for _, id := range sectionOrder {
		bad := tamper(t, snap, id, 1, false)
		if _, err := Open(bytes.NewReader(bad)); err == nil {
			t.Errorf("flipped byte in section %d accepted", id)
		}
	}
}

// hmacSigSize is the signature width of the test signer, needed to walk
// the auth section (sized entries of 4+128 bytes each).
const hmacSigSize = 128

// TestConsistentTamperFailsVerification models the real adversary: a byte
// flip with the section CRC recomputed, so the container is internally
// consistent. The snapshot may open — but the served proofs must then fail
// verification, because the root of trust is the manifest signature, not
// the snapshot channel.
func TestConsistentTamperFailsVerification(t *testing.T) {
	col := buildCollection(t, nil)
	snap := encode(t, col)
	idx := col.Index()
	m := idx.M()
	tokens := queryTokens(col)

	// Find a document absent from the honest top-2 result: its tampered
	// doc-hash leaf then sits on the digest path of the content proof.
	honest, _, _, err := col.Search(tokens, 2, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		t.Fatal(err)
	}
	inResult := make(map[int]bool)
	for _, e := range honest.Entries {
		inResult[int(e.Doc)] = true
	}
	victim := -1
	for d := 0; d < idx.N; d++ {
		if !inResult[d] {
			victim = d
			break
		}
	}
	if victim < 0 {
		t.Fatal("every document is in the top-2 result")
	}

	// Auth section layout (non-dict, unboosted): mode byte, 4·m sized
	// signatures, 4·m term roots, n doc hashes of hashSize bytes.
	hashSize := 16
	docHashOff := 1 + 4*m*(4+hmacSigSize) + 4*m*hashSize + victim*hashSize
	bad := tamper(t, snap, secAuth, docHashOff, true)
	reopened, err := Open(bytes.NewReader(bad))
	if err != nil {
		t.Fatalf("consistently tampered snapshot failed to open: %v", err)
	}
	res, voBytes, _, err := reopened.Search(tokens, 2, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		t.Fatalf("search on tampered collection: %v", err)
	}
	if _, err := col.VerifyResult(tokens, 2, res, voBytes); err == nil {
		t.Fatal("client accepted a content proof built over a tampered doc-hash leaf")
	}

	// Tamper inside term 0's TRA-MHT signature: the VO carries it and the
	// client's signature check fails.
	bad = tamper(t, snap, secAuth, 8, true)
	reopened, err = Open(bytes.NewReader(bad))
	if err != nil {
		t.Fatalf("sig-tampered snapshot failed to open: %v", err)
	}
	term0 := []string{idx.Name(0)}
	res, voBytes, _, err = reopened.Search(term0, 5, core.AlgoTRA, core.SchemeMHT)
	if err != nil {
		t.Fatalf("search on sig-tampered collection: %v", err)
	}
	if _, err := col.VerifyResult(term0, 5, res, voBytes); err == nil {
		t.Fatal("client accepted a result carrying a tampered signature")
	}
}

// TestConsistentContentTamperFailsVerification flips the final byte of the
// index section (the last document's raw content, CRC fixed): when that
// document is served, the delivered content no longer hashes to the
// committed doc-hash leaf.
func TestConsistentContentTamperFailsVerification(t *testing.T) {
	col := buildCollection(t, nil)
	snap := encode(t, col)
	idx := col.Index()
	last := idx.N - 1
	if len(idx.Content[last]) == 0 {
		t.Fatal("last document has no content to tamper with")
	}

	start, end, _ := sectionRange(t, snap, secIndex)
	bad := tamper(t, snap, secIndex, end-start-1, true)
	reopened, err := Open(bytes.NewReader(bad))
	if err != nil {
		t.Logf("content-tampered snapshot rejected at open: %v", err)
		return
	}
	// Query a term the last document contains with r = n, so the tampered
	// content is delivered as part of the result.
	vec := idx.DocVector(index.DocID(last))
	if len(vec) == 0 {
		t.Fatal("last document has no indexed terms")
	}
	tokens := []string{idx.Name(vec[0].Term)}
	res, voBytes, _, err := reopened.Search(tokens, idx.N, core.AlgoTNRA, core.SchemeCMHT)
	if err != nil {
		t.Fatalf("search on content-tampered collection: %v", err)
	}
	if _, err := col.VerifyResult(tokens, idx.N, res, voBytes); err == nil {
		t.Fatal("client accepted tampered document content")
	}
}

// replaceSection rebuilds the container with a new payload for one section
// (length and CRC fixed up), modelling an adversary who rewrites a section
// wholesale.
func replaceSection(t testing.TB, snap []byte, id uint16, payload []byte) []byte {
	t.Helper()
	start, end, _ := sectionRange(t, snap, id)
	hdrStart := start - 16
	out := append([]byte(nil), snap[:hdrStart]...)
	out = binary.BigEndian.AppendUint16(out, id)
	out = binary.BigEndian.AppendUint16(out, 0)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	out = binary.BigEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return append(out, snap[end:]...)
}

// TestOpenRejectsInflatedManifestCounts forges a CRC-consistent manifest
// claiming a huge boosted collection over small sections: every
// manifest-derived allocation must be bounded by real payload bytes, so
// Open errors promptly instead of attempting multi-gigabyte allocations.
func TestOpenRejectsInflatedManifestCounts(t *testing.T) {
	col := buildCollection(t, func(cfg *engine.Config) {
		docs := corpus.Generate(corpus.Tiny())
		authority := make([]float64, len(docs))
		for i := range authority {
			authority[i] = 0.5
		}
		cfg.Authority = authority
		cfg.Beta = 1.0
	})
	snap := encode(t, col)

	start, end, _ := sectionRange(t, snap, secManifest)
	payload := snap[start:end]
	rawLen := int(binary.BigEndian.Uint32(payload))
	raw := payload[4 : 4+rawLen]
	sig := payload[4+rawLen+4:]
	m, err := core.DecodeManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	m.N = 1<<31 - 1
	forged := appendSized32(nil, m.Encode())
	forged = appendSized32(forged, sig)

	bad := replaceSection(t, snap, secManifest, forged)
	if _, err := Open(bytes.NewReader(bad)); err == nil {
		t.Fatal("manifest claiming 2^31 documents over tiny sections accepted")
	}
}

// TestWriteRejectsOversizedTermName: the index codec stores names behind
// u16 lengths; Write must refuse rather than emit an unreopenable artifact.
func TestWriteRejectsOversizedTermName(t *testing.T) {
	signer, err := sig.NewHMACSigner([]byte("oversize"), 128)
	if err != nil {
		t.Fatal(err)
	}
	giant := strings.Repeat("a", 70000)
	docs := []index.Document{
		{Content: []byte("x"), Tokens: []string{giant, "shared"}},
		{Content: []byte("y"), Tokens: []string{giant, "shared"}},
	}
	col, err := engine.BuildCollection(docs, engine.DefaultConfig(signer))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, col); err == nil {
		t.Fatal("snapshot with a 70000-byte term name written without error")
	}
}

func TestOpenRejectsVerifierSwap(t *testing.T) {
	col := buildCollection(t, nil)
	snap := encode(t, col)
	// Replace the embedded HMAC key (flip a key byte, CRC fixed): the
	// embedded manifest signature no longer verifies under it.
	bad := tamper(t, snap, secPubKey, 10, true)
	if _, err := Open(bytes.NewReader(bad)); err == nil {
		t.Fatal("snapshot with mismatched verifier accepted")
	}
}
