//go:build !unix

package snapshot

import (
	"io"
	"os"
)

// mmapFile on platforms without a usable mmap reads the file into memory.
// OpenMapped still works — sections share the one buffer — it just loses
// the page-cache sharing and lazy-fault properties of a true mapping.
func mmapFile(f *os.File, size int64) ([]byte, bool, error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), b); err != nil {
		return nil, false, err
	}
	return b, false, nil
}

func munmapFile([]byte) error { return nil }
