package snapshot

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"authtext/internal/core"
	"authtext/internal/engine"
	"authtext/internal/index"
	"authtext/internal/sig"
)

// Golden container regression suite: testdata/golden-v1.atsn is an ATSN
// snapshot written by the format-v1 writer over a small fixed corpus with
// a fixed HMAC key. Any change that makes the current decoder unable to
// open artifacts written by earlier builds — new mandatory sections,
// reordered sections, changed header widths, changed payload codecs —
// fails this test loudly. Regenerate with UPDATE_GOLDEN=1 only alongside a
// deliberate, documented format version bump.

const goldenSnapshot = "testdata/golden-v1.atsn"

func goldenCollection(t testing.TB) *engine.Collection {
	t.Helper()
	signer, err := sig.NewHMACSigner([]byte("golden-fixture-key"), 128)
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{
		"a merkle hash tree authenticates messages by signing the root digest",
		"threshold algorithms pop the entry with the highest term score",
		"the verification object contains digests to recompute the signed root",
		"sorted access maintains lower and upper bounds for candidate documents",
		"signatures generated with the private key verify with the public key",
		"the frequency ordered inverted index stores impact entries",
		"an audit trail archives verification objects for every decision",
		"random access fetches term frequencies from the document record",
	}
	docs := make([]index.Document, len(texts))
	for i, s := range texts {
		docs[i] = index.Document{Content: []byte(s)}
	}
	cfg := engine.DefaultConfig(signer)
	cfg.VocabProofs = true
	col, err := engine.BuildCollection(docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func TestGoldenSnapshotOpens(t *testing.T) {
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenSnapshot), 0o755); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, goldenCollection(t)); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenSnapshot, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(goldenSnapshot)
	if err != nil {
		t.Fatalf("missing golden fixture (run with UPDATE_GOLDEN=1 once): %v", err)
	}

	col, err := Open(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("the current decoder no longer opens a v1 snapshot written by an earlier build: %v", err)
	}
	idx := col.Index()
	if idx.N != 8 {
		t.Fatalf("golden collection has %d documents, want 8", idx.N)
	}
	m, _ := col.Manifest()
	if !m.VocabProofsEnabled || m.DictMode {
		t.Fatalf("golden manifest flags changed: %+v", m)
	}

	// The reopened collection must still serve verifiable answers for every
	// algorithm/scheme combination.
	tokens := []string{"merkle", "root", "digests"}
	for _, algo := range []core.Algo{core.AlgoTRA, core.AlgoTNRA} {
		for _, scheme := range []core.Scheme{core.SchemeMHT, core.SchemeCMHT} {
			res, vo, _, err := col.Search(tokens, 3, algo, scheme)
			if err != nil {
				t.Fatalf("%v-%v: %v", algo, scheme, err)
			}
			if _, err := col.VerifyResult(tokens, 3, res, vo); err != nil {
				t.Errorf("%v-%v: golden snapshot answer failed verification: %v", algo, scheme, err)
			}
		}
	}
}

// TestGoldenSnapshotHeaderStable pins the container framing itself: magic,
// version, section count, section ids and order. A writer-side format
// change shows up here even though the golden file still opens.
func TestGoldenSnapshotHeaderStable(t *testing.T) {
	raw, err := os.ReadFile(goldenSnapshot)
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	if string(raw[:4]) != "ATSN" {
		t.Fatalf("magic = %q", raw[:4])
	}
	if v := binary.BigEndian.Uint16(raw[4:]); v != 1 {
		t.Fatalf("golden file claims version %d; regenerate it only with a deliberate format bump", v)
	}
	if n := binary.BigEndian.Uint16(raw[6:]); n != 7 {
		t.Fatalf("section count = %d, want 7", n)
	}
	wantIDs := []uint16{1, 2, 3, 4, 5, 6, 7}
	off := 8
	for _, want := range wantIDs {
		if off+16 > len(raw) {
			t.Fatalf("truncated before section %d", want)
		}
		if id := binary.BigEndian.Uint16(raw[off:]); id != want {
			t.Fatalf("section id %d, want %d", id, want)
		}
		off += 16 + int(binary.BigEndian.Uint64(raw[off+8:]))
	}
	if off != len(raw) {
		t.Fatalf("%d trailing bytes after last section", len(raw)-off)
	}

	// The CURRENT writer must still emit the same framing for the same
	// collection (payload bytes may differ only in the stats section,
	// whose build time is wall-clock).
	var buf bytes.Buffer
	if err := Write(&buf, goldenCollection(t)); err != nil {
		t.Fatal(err)
	}
	fresh := buf.Bytes()
	if !bytes.Equal(fresh[:8], raw[:8]) {
		t.Errorf("current writer header %x disagrees with golden %x", fresh[:8], raw[:8])
	}
	for _, id := range wantIDs[:6] { // all sections except stats are deterministic
		fs, fe, _ := sectionRange(t, fresh, id)
		gs, ge, _ := sectionRange(t, raw, id)
		if !bytes.Equal(fresh[fs:fe], raw[gs:ge]) {
			t.Errorf("current writer produces different bytes for section %d", id)
		}
	}
}
