package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"authtext/internal/core"
	"authtext/internal/corpus"
	"authtext/internal/engine"
	"authtext/internal/sig"
)

func writeSnapshotFile(t testing.TB, snap []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "col.snap")
	if err := os.WriteFile(path, snap, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMappedMatchesOpen: the mapped open serves the same collection as
// the copying open — same manifest, same signature, and byte-identical
// verification objects for the same query. Zero-copy is an open-path
// optimization, not a second code path with its own semantics.
func TestMappedMatchesOpen(t *testing.T) {
	col := buildCollection(t, nil)
	snap := encode(t, col)
	path := writeSnapshotFile(t, snap)

	copied, err := Open(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if err := m.Wait(); err != nil {
		t.Fatalf("background validation failed on an intact snapshot: %v", err)
	}

	wantM, wantSig := copied.Manifest()
	gotM, gotSig := m.Collection().Manifest()
	if !bytes.Equal(wantM.Encode(), gotM.Encode()) {
		t.Fatal("mapped open decoded a different manifest")
	}
	if !bytes.Equal(wantSig, gotSig) {
		t.Fatal("mapped open decoded a different manifest signature")
	}

	tokens := queryTokens(copied)
	for _, algo := range []core.Algo{core.AlgoTRA, core.AlgoTNRA} {
		for _, scheme := range []core.Scheme{core.SchemeMHT, core.SchemeCMHT} {
			if err := searchAndVerify(t, m.Collection(), tokens, algo, scheme); err != nil {
				t.Fatalf("%v/%v on the mapped collection: %v", algo, scheme, err)
			}
			_, wantVO, _, err := copied.Search(tokens, 5, algo, scheme)
			if err != nil {
				t.Fatal(err)
			}
			_, gotVO, _, err := m.Collection().Search(tokens, 5, algo, scheme)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantVO, gotVO) {
				t.Fatalf("%v/%v: mapped VO differs from the copying open's", algo, scheme)
			}
		}
	}
}

// TestMappedRefcounting pins the lifetime contract: Retain succeeds
// while a reference is held, the pages (and the mapped-bytes gauge)
// survive until the last Release, and Retain after the final release
// reports the mapping gone instead of resurrecting it.
func TestMappedRefcounting(t *testing.T) {
	col := buildCollection(t, nil)
	path := writeSnapshotFile(t, encode(t, col))

	base := MappedBytes()
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err != nil { // background hold released after this
		t.Fatal(err)
	}
	if m.osMap && MappedBytes() <= base {
		t.Fatal("mapped-bytes gauge did not grow on open")
	}
	if !m.Retain() {
		t.Fatal("Retain failed while the opener's reference is live")
	}
	m.Release() // drop the retain
	m.Release() // drop the opener's reference — last one, unmaps
	if m.Retain() {
		t.Fatal("Retain succeeded after the last release")
	}
	if got := MappedBytes(); got != base {
		t.Fatalf("mapped-bytes gauge did not return to baseline: %d != %d", got, base)
	}
}

// TestMappedSmallSectionCorruptionFailsOpen: sections below
// deferredCRCMin keep their open-path CRC — a flipped manifest byte
// must fail OpenMapped itself, before any collection exists.
func TestMappedSmallSectionCorruptionFailsOpen(t *testing.T) {
	col := buildCollection(t, nil)
	snap := encode(t, col)
	start, end, _ := sectionRange(t, snap, secManifest)
	if end-start >= deferredCRCMin {
		t.Fatalf("manifest section unexpectedly large (%d bytes); pick a smaller one", end-start)
	}
	bad := tamper(t, snap, secManifest, 3, false)
	path := writeSnapshotFile(t, bad)
	if m, err := OpenMapped(path); err == nil {
		m.Release()
		t.Fatal("corrupted small section opened successfully")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// A small-profile snapshot whose store section crosses the deferred-CRC
// threshold, shared across the deferred-validation tests (building it
// is the expensive part).
var deferredFixture struct {
	once sync.Once
	snap []byte
	err  error
}

func deferredSnapshot(t *testing.T) []byte {
	t.Helper()
	deferredFixture.once.Do(func() {
		signer, err := sig.NewHMACSigner([]byte("mapped-deferred"), 128)
		if err != nil {
			deferredFixture.err = err
			return
		}
		col, err := engine.BuildCollection(corpus.Generate(corpus.Small()), engine.DefaultConfig(signer))
		if err != nil {
			deferredFixture.err = err
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, col); err != nil {
			deferredFixture.err = err
			return
		}
		deferredFixture.snap = buf.Bytes()
	})
	if deferredFixture.err != nil {
		t.Fatal(deferredFixture.err)
	}
	return deferredFixture.snap
}

// TestMappedDeferredCorruptionPoisons: a flipped bit in a bulk section
// (validated off the open path) must not open a healthy-looking server —
// the background scan reports it via Wait and poisons the device, so
// reads after detection fail too.
func TestMappedDeferredCorruptionPoisons(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a small-profile collection")
	}
	snap := deferredSnapshot(t)
	start, end, _ := sectionRange(t, snap, secStore)
	if end-start < deferredCRCMin {
		t.Fatalf("store section only %d bytes — below the deferred threshold; grow the corpus", end-start)
	}
	bad := tamper(t, snap, secStore, (end-start)/2, false)
	path := writeSnapshotFile(t, bad)

	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("deferred-section corruption failed the open inline: %v", err)
	}
	defer m.Release()
	if err := m.Wait(); err == nil {
		t.Fatal("background validation passed a corrupted store section")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("unexpected verdict: %v", err)
	}
	// The device is poisoned: searches fail instead of serving reads
	// from a file known to be corrupt.
	tokens := queryTokens(m.Collection())
	if _, _, _, err := m.Collection().Search(tokens, 5, core.AlgoTNRA, core.SchemeCMHT); err == nil {
		t.Fatal("search succeeded on a poisoned device")
	}
}

// TestMappedDeferredIntactValidates is the control: the same
// small-profile snapshot, unmodified, opens mapped, validates clean and
// serves verifiable results.
func TestMappedDeferredIntactValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a small-profile collection")
	}
	snap := deferredSnapshot(t)
	path := writeSnapshotFile(t, snap)
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if err := m.Wait(); err != nil {
		t.Fatalf("background validation failed on an intact snapshot: %v", err)
	}
	if err := searchAndVerify(t, m.Collection(), queryTokens(m.Collection()), core.AlgoTNRA, core.SchemeCMHT); err != nil {
		t.Fatal(err)
	}
}
