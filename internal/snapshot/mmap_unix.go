//go:build unix

package snapshot

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared, so the pages come
// from (and stay in) the kernel page cache. The mapping survives f being
// closed. The second return reports that the bytes are an OS mapping and
// must go through munmapFile.
func mmapFile(f *os.File, size int64) ([]byte, bool, error) {
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

func munmapFile(b []byte) error { return syscall.Munmap(b) }
