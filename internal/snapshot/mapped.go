package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"authtext/internal/engine"
)

// Mapped opens: instead of streaming a snapshot through copies, OpenMapped
// maps the file read-only and hands the collection slices straight into
// the mapping — the device data, signature tables and hash tables all
// alias page-cache memory shared with every other process mapping the same
// file. Opening becomes metadata-speed (decode the small sections, validate
// invariants) instead of bandwidth-bound, and a fleet of replicas opening
// the same generation shares one physical copy.
//
// Integrity is not weakened, only re-scheduled: small sections have their
// CRC checked before the collection is returned, and every section at or
// above deferredCRCMin (the store, index and signature sections — the
// bandwidth-bound bulk) is checked by a background goroutine that poisons
// the device on mismatch — reads after a detected corruption fail, and
// reads before it produce responses that fail client verification, which
// is the trust model's backstop anyway. Structural safety never rests on
// the CRCs: the decoders bounds-check hostile bytes either way.
//
// Lifetime is explicit because the OS mapping cannot be garbage-collected:
// a Mapped starts with one reference, Retain/Release add and drop holds,
// and the pages unmap when the count reaches zero. Using the collection
// after the last release faults; holders must keep a reference for as long
// as they read.

// mappedBytes tracks the bytes currently memory-mapped by this package
// (the authtext_snapshot_mapped_bytes gauge).
var mappedBytes atomic.Int64

// MappedBytes reports the snapshot bytes currently memory-mapped by this
// process.
func MappedBytes() int64 { return mappedBytes.Load() }

// Mapped is a collection whose backing storage is a read-only file
// mapping. Collection is valid while at least one reference is held.
type Mapped struct {
	col   *engine.Collection
	data  []byte
	osMap bool // data is an OS mapping (false on fallback platforms)

	refs   atomic.Int64
	crcWG  sync.WaitGroup
	crcErr atomic.Pointer[error]
}

// OpenMapped maps the snapshot file at path and reconstructs the serving
// collection zero-copy. The returned Mapped holds one reference; call
// Release when done with the collection.
func OpenMapped(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size < 8 {
		return nil, errors.New("snapshot: not a snapshot (too small)")
	}
	if uint64(size) > uint64(math.MaxInt) {
		return nil, fmt.Errorf("snapshot: %d bytes exceeds the addressable size", size)
	}
	data, osMap, err := mmapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("snapshot: mapping %s: %w", path, err)
	}
	m := &Mapped{data: data, osMap: osMap}
	m.refs.Store(1)
	if osMap {
		mappedBytes.Add(int64(len(data)))
	}
	col, deferred, err := openMappedBytes(data)
	if err != nil {
		m.unmap()
		return nil, err
	}
	m.col = col
	// Validate the bulk sections off the open path: they dominate the file
	// and checking them inline would re-introduce the bandwidth-bound open
	// this API exists to avoid. The goroutine holds a reference so the
	// pages outlive the scan even if the caller releases immediately.
	m.refs.Add(1)
	m.crcWG.Add(1)
	go func() {
		defer m.crcWG.Done()
		defer m.Release()
		for _, s := range deferred {
			if crc32.ChecksumIEEE(s.payload) == s.want {
				continue
			}
			err := fmt.Errorf("snapshot: section %d fails its checksum (corrupted snapshot)", s.id)
			m.crcErr.Store(&err)
			col.Device().Poison(err)
			return
		}
	}()
	return m, nil
}

// deferredCRCMin is the smallest section validated in the background
// instead of on the open path. Everything below it (manifest, public key,
// stats, small tables) is still checked before the collection exists.
const deferredCRCMin = 1 << 20

// sectionCheck is one deferred section validation.
type sectionCheck struct {
	id      uint16
	want    uint32
	payload []byte
}

// openMappedBytes walks the container over one contiguous buffer, CRCs
// the small sections inline (large ones are returned for deferred
// validation), and restores the collection with shared slices.
func openMappedBytes(b []byte) (col *engine.Collection, deferred []sectionCheck, err error) {
	if string(b[:4]) != magic {
		return nil, nil, errors.New("snapshot: not a snapshot (bad magic)")
	}
	if v := binary.BigEndian.Uint16(b[4:]); v != Version {
		return nil, nil, fmt.Errorf("%w: %d (this build speaks %d)", ErrVersion, v, Version)
	}
	if n := binary.BigEndian.Uint16(b[6:]); int(n) != len(sectionOrder) {
		return nil, nil, fmt.Errorf("snapshot: %d sections, format v%d has %d", n, Version, len(sectionOrder))
	}
	off := 8
	payloads := make(map[uint16][]byte, len(sectionOrder))
	for _, wantID := range sectionOrder {
		if len(b)-off < 16 {
			return nil, nil, fmt.Errorf("snapshot: reading section header: truncated at %d", off)
		}
		id := binary.BigEndian.Uint16(b[off:])
		if id != wantID {
			return nil, nil, fmt.Errorf("snapshot: section %d out of order (want %d)", id, wantID)
		}
		if binary.BigEndian.Uint16(b[off+2:]) != 0 {
			return nil, nil, fmt.Errorf("snapshot: section %d has non-zero reserved field", id)
		}
		wantCRC := binary.BigEndian.Uint32(b[off+4:])
		length := binary.BigEndian.Uint64(b[off+8:])
		off += 16
		if length > uint64(len(b)-off) {
			return nil, nil, fmt.Errorf("snapshot: section %d: truncated payload (declared %d bytes)", id, length)
		}
		payload := b[off : off+int(length)]
		off += int(length)
		if len(payload) >= deferredCRCMin {
			deferred = append(deferred, sectionCheck{id: id, want: wantCRC, payload: payload})
		} else if crc32.ChecksumIEEE(payload) != wantCRC {
			return nil, nil, fmt.Errorf("snapshot: section %d fails its checksum (corrupted snapshot)", id)
		}
		payloads[id] = payload
	}
	if off != len(b) {
		return nil, nil, errors.New("snapshot: trailing bytes after last section")
	}
	col, err = restoreFromPayloads(payloads, true)
	if err != nil {
		return nil, nil, err
	}
	return col, deferred, nil
}

// Collection returns the restored collection. Valid only while a
// reference is held.
func (m *Mapped) Collection() *engine.Collection { return m.col }

// SizeBytes reports the mapped file size.
func (m *Mapped) SizeBytes() int64 { return int64(len(m.data)) }

// Retain adds a reference, reporting false when the mapping is already
// gone (count reached zero); a false return means the caller must reopen.
func (m *Mapped) Retain() bool {
	for {
		n := m.refs.Load()
		if n <= 0 {
			return false
		}
		if m.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release drops a reference, unmapping the pages when the last holder is
// gone. Calling Release more often than Retain+1 is a bug.
func (m *Mapped) Release() {
	if m.refs.Add(-1) == 0 {
		m.unmap()
	}
}

// Wait blocks until the deferred bulk-section validation finished and
// returns its verdict (nil for an intact snapshot).
func (m *Mapped) Wait() error {
	m.crcWG.Wait()
	if p := m.crcErr.Load(); p != nil {
		return *p
	}
	return nil
}

func (m *Mapped) unmap() {
	if m.data == nil {
		return
	}
	if m.osMap {
		mappedBytes.Add(-int64(len(m.data)))
		_ = munmapFile(m.data)
	}
	m.data = nil
}
