// Package wire implements the negotiated binary framing of the /v1
// protocol: length-prefixed, CRC-protected frames that carry search
// responses, batch results, sharded fan-out answers and manifest blobs
// with their []byte payloads verbatim — no base64, no JSON re-encoding.
// JSON remains the default representation (debuggability first); a client
// opts into frames per request with `Accept: application/x-authtext-frame`
// and the server answers with the same Content-Type
// (docs/PROTOCOL.md "Binary framing" is the normative description).
//
// This file defines the response types shared by both representations.
// They live here — not in internal/httpapi — so the binary codecs and the
// JSON handler can use the identical structs without an import cycle;
// internal/httpapi aliases every one of them, so existing callers and the
// JSON golden fixtures are untouched.
//
// Like the JSON envelope, frames add no trust: every field is verified by
// the client against the owner's signed manifest, so transport-level
// integrity (the per-frame CRC) only distinguishes accidental corruption
// from a well-formed lie — and a verifying client rejects both.
package wire

// Hit is one verified result entry. Content is the full document body,
// base64-encoded in JSON and verbatim in a frame.
type Hit struct {
	DocID   int     `json:"doc_id"`
	Score   float64 `json:"score"`
	Content []byte  `json:"content"`
}

// SearchStats reports the server-side per-query costs (§4.1 of the paper).
// They are informational only — nothing in them is covered by the VO.
type SearchStats struct {
	QueryTerms     int     `json:"query_terms"`
	EntriesRead    int     `json:"entries_read"`
	EntriesPerTerm float64 `json:"entries_per_term"`
	PctListRead    float64 `json:"pct_list_read"`
	BlockReads     int64   `json:"block_reads"`
	RandomReads    int64   `json:"random_reads"`
	IOMillis       float64 `json:"io_millis"`
	VOBytes        int     `json:"vo_bytes"`
	ServerMillis   float64 `json:"server_millis"`
}

// SearchResponse is the answer to a search request. Query, R, Algo and
// Scheme echo the request after normalisation; a verifying client MUST
// check the result against the parameters it asked for, not the echo (a
// tampering server could rewrite both consistently).
type SearchResponse struct {
	Query  string `json:"query"`
	R      int    `json:"r"`
	Algo   string `json:"algo"`
	Scheme string `json:"scheme"`
	// Generation is the publication generation that answered (0/absent on
	// static collections). It is an untrusted hint — the VO carries the
	// authoritative stamp — that tells clients when to refresh their
	// manifest from /v1/manifest (docs/UPDATES.md).
	Generation uint64      `json:"generation,omitempty"`
	Hits       []Hit       `json:"hits"`
	VO         []byte      `json:"vo"`
	Stats      SearchStats `json:"stats"`
}

// ErrorBody is a machine-readable code plus a human-readable message (the
// payload of every error envelope, and of per-query failures in a batch).
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// BatchSearchResult is one query's outcome inside a BatchSearchResponse:
// exactly one of Response and Error is set. A per-query failure does not
// fail the batch.
type BatchSearchResult struct {
	Response *SearchResponse `json:"response,omitempty"`
	Error    *ErrorBody      `json:"error,omitempty"`
}

// BatchSearchResponse answers a batch search request; Results[i]
// corresponds to Queries[i].
type BatchSearchResponse struct {
	Results []BatchSearchResult `json:"results"`
}

// ManifestResponse carries the owner's verification material: Export is
// the self-contained blob (signed manifest + public key) that the
// verification client accepts. Format names the blob encoding so future
// versions can migrate.
type ManifestResponse struct {
	Format string `json:"format"`
	Export []byte `json:"export"`
}

// MergedHit is one entry of the claimed global ranking of a sharded
// response. It carries no content: the content (and the proof) of the hit
// lives in the cited shard's response, which the client verifies first.
type MergedHit struct {
	Shard    int     `json:"shard"`
	DocID    int     `json:"doc_id"`
	GlobalID int     `json:"global_id"`
	Score    float64 `json:"score"`
}

// ShardedSearchStats aggregates server-side fan-out costs (informational
// only, like SearchStats).
type ShardedSearchStats struct {
	Shards       int     `json:"shards"`
	EntriesRead  int     `json:"entries_read"`
	VOBytes      int     `json:"vo_bytes"`
	IOMillis     float64 `json:"io_millis"`
	ServerMillis float64 `json:"server_millis"`
}

// ShardedSearchResponse is the answer of a sharded deployment: every
// shard's individually authenticated SearchResponse plus the merged global
// top-r. A verifying client checks each shard response against its own
// manifest and recomputes the merge; the echoed parameters are as
// untrusted as in SearchResponse.
type ShardedSearchResponse struct {
	Query  string `json:"query"`
	R      int    `json:"r"`
	Algo   string `json:"algo"`
	Scheme string `json:"scheme"`
	// Generation is the shard-set generation that answered (0/absent on
	// static sets); an untrusted refresh hint like
	// SearchResponse.Generation.
	Generation uint64             `json:"generation,omitempty"`
	Shards     []SearchResponse   `json:"shards"`
	Merged     []MergedHit        `json:"merged"`
	Stats      ShardedSearchStats `json:"stats"`
}
