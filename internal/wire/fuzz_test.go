package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame feeds hostile bytes to the frame decoder and, when a
// frame survives, to every message decoder. The invariants: no panic, no
// over-allocation (enforced inside the decoders by construction), and any
// payload that decodes as a message re-encodes to a decodable frame.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ATWF"))
	f.Add(EncodeSearchResponse(sampleSearchResponse()))
	f.Add(EncodeBatchSearchResponse(&BatchSearchResponse{Results: []BatchSearchResult{
		{Error: &ErrorBody{Code: "c", Message: "m"}},
	}}))
	f.Add(EncodeShardedSearchResponse(&ShardedSearchResponse{Query: "q"}))
	f.Add(EncodeManifestResponse(&ManifestResponse{Format: "atcx1", Export: []byte("blob")}))
	// A corrupted-but-complete frame: valid header, flipped payload byte.
	corrupt := EncodeSearchResponse(sampleSearchResponse())
	corrupt[len(corrupt)-1] ^= 0x01
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, b []byte) {
		typ, raw, err := DecodeFrame(b)
		if err != nil {
			return
		}
		// The frame was intact: the raw payload must round-trip through the
		// typed decoders without panicking; re-encoding a decoded message
		// must itself decode.
		switch typ {
		case TypeSearch:
			if r, err := DecodeSearchResponse(b); err == nil {
				if _, err := DecodeSearchResponse(EncodeSearchResponse(r)); err != nil {
					t.Fatalf("re-encode failed to decode: %v", err)
				}
			}
		case TypeBatch:
			if r, err := DecodeBatchSearchResponse(b); err == nil {
				if _, err := DecodeBatchSearchResponse(EncodeBatchSearchResponse(r)); err != nil {
					t.Fatalf("re-encode failed to decode: %v", err)
				}
			}
		case TypeSharded:
			if r, err := DecodeShardedSearchResponse(b); err == nil {
				if _, err := DecodeShardedSearchResponse(EncodeShardedSearchResponse(r)); err != nil {
					t.Fatalf("re-encode failed to decode: %v", err)
				}
			}
		case TypeManifest:
			if r, err := DecodeManifestResponse(b); err == nil {
				if _, err := DecodeManifestResponse(EncodeManifestResponse(r)); err != nil {
					t.Fatalf("re-encode failed to decode: %v", err)
				}
			}
		}
		// A streamed read of the same bytes must agree with the buffer path.
		typ2, raw2, err := ReadFrame(bytes.NewReader(b))
		if err != nil || typ2 != typ || !bytes.Equal(raw2, raw) {
			t.Fatalf("ReadFrame disagrees with DecodeFrame (err %v)", err)
		}
	})
}
