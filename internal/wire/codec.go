package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Message codecs: canonical binary encodings of the response types. All
// integers are big-endian; byte strings carry a u32 length prefix; counts
// are validated against the remaining input before any allocation, so a
// hostile length field cannot force a large allocation it has not paid
// for in real bytes. Every encoder is deterministic — same value, same
// bytes — which the VO-cache byte-identity guarantee depends on.

// Per-message layout (see docs/PROTOCOL.md "Binary framing"):
//
//	SearchResponse:  str query | u32 r | str algo | str scheme |
//	                 u64 generation | u32 nhits ·{ u64 doc_id | f64 score |
//	                 bytes content } | bytes vo | SearchStats
//	SearchStats:     u32 query_terms | u32 entries_read | f64 per_term |
//	                 f64 pct_read | u64 block_reads | u64 random_reads |
//	                 f64 io_millis | u32 vo_bytes | f64 server_millis
//	Batch:           u32 n ·{ u8 tag (0 error, 1 response) |
//	                 error: str code, str message | response: SearchResponse }
//	Sharded:         str query | u32 r | str algo | str scheme |
//	                 u64 generation | u32 nshards ·SearchResponse |
//	                 u32 nmerged ·{ u32 shard | u64 doc_id | u64 global_id |
//	                 f64 score } | ShardedSearchStats
//	ShardedStats:    u32 shards | u32 entries_read | u32 vo_bytes |
//	                 f64 io_millis | f64 server_millis
//	Manifest:        str format | bytes export

// ErrDecode reports a structurally invalid message payload (the frame
// itself was intact). Like ErrFrame it indicates a peer speaking garbage,
// which verifying clients treat as tampering.
var ErrDecode = errors.New("wire: bad message")

func decodeErr(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrDecode, fmt.Sprintf(format, args...))
}

// --- encoding ---

func appendStr(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

func appendSearchStats(b []byte, st *SearchStats) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(st.QueryTerms))
	b = binary.BigEndian.AppendUint32(b, uint32(st.EntriesRead))
	b = binary.BigEndian.AppendUint64(b, f64bits(st.EntriesPerTerm))
	b = binary.BigEndian.AppendUint64(b, f64bits(st.PctListRead))
	b = binary.BigEndian.AppendUint64(b, uint64(st.BlockReads))
	b = binary.BigEndian.AppendUint64(b, uint64(st.RandomReads))
	b = binary.BigEndian.AppendUint64(b, f64bits(st.IOMillis))
	b = binary.BigEndian.AppendUint32(b, uint32(st.VOBytes))
	b = binary.BigEndian.AppendUint64(b, f64bits(st.ServerMillis))
	return b
}

func appendSearchResponse(b []byte, r *SearchResponse) []byte {
	b = appendStr(b, r.Query)
	b = binary.BigEndian.AppendUint32(b, uint32(r.R))
	b = appendStr(b, r.Algo)
	b = appendStr(b, r.Scheme)
	b = binary.BigEndian.AppendUint64(b, r.Generation)
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Hits)))
	for i := range r.Hits {
		h := &r.Hits[i]
		b = binary.BigEndian.AppendUint64(b, uint64(int64(h.DocID)))
		b = binary.BigEndian.AppendUint64(b, f64bits(h.Score))
		b = appendBytes(b, h.Content)
	}
	b = appendBytes(b, r.VO)
	return appendSearchStats(b, &r.Stats)
}

// EncodeSearchResponse frames one search answer.
func EncodeSearchResponse(r *SearchResponse) []byte {
	return EncodeFrame(TypeSearch, appendSearchResponse(nil, r))
}

// EncodeBatchSearchResponse frames one batch answer.
func EncodeBatchSearchResponse(r *BatchSearchResponse) []byte {
	b := binary.BigEndian.AppendUint32(nil, uint32(len(r.Results)))
	for i := range r.Results {
		res := &r.Results[i]
		if res.Error != nil {
			b = append(b, 0)
			b = appendStr(b, res.Error.Code)
			b = appendStr(b, res.Error.Message)
			continue
		}
		b = append(b, 1)
		b = appendSearchResponse(b, res.Response)
	}
	return EncodeFrame(TypeBatch, b)
}

// EncodeShardedSearchResponse frames one fan-out answer.
func EncodeShardedSearchResponse(r *ShardedSearchResponse) []byte {
	b := appendStr(nil, r.Query)
	b = binary.BigEndian.AppendUint32(b, uint32(r.R))
	b = appendStr(b, r.Algo)
	b = appendStr(b, r.Scheme)
	b = binary.BigEndian.AppendUint64(b, r.Generation)
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Shards)))
	for i := range r.Shards {
		b = appendSearchResponse(b, &r.Shards[i])
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Merged)))
	for i := range r.Merged {
		m := &r.Merged[i]
		b = binary.BigEndian.AppendUint32(b, uint32(m.Shard))
		b = binary.BigEndian.AppendUint64(b, uint64(int64(m.DocID)))
		b = binary.BigEndian.AppendUint64(b, uint64(int64(m.GlobalID)))
		b = binary.BigEndian.AppendUint64(b, f64bits(m.Score))
	}
	b = binary.BigEndian.AppendUint32(b, uint32(r.Stats.Shards))
	b = binary.BigEndian.AppendUint32(b, uint32(r.Stats.EntriesRead))
	b = binary.BigEndian.AppendUint32(b, uint32(r.Stats.VOBytes))
	b = binary.BigEndian.AppendUint64(b, f64bits(r.Stats.IOMillis))
	b = binary.BigEndian.AppendUint64(b, f64bits(r.Stats.ServerMillis))
	return EncodeFrame(TypeSharded, b)
}

// EncodeManifestResponse frames the verification-material bootstrap.
func EncodeManifestResponse(r *ManifestResponse) []byte {
	b := appendStr(nil, r.Format)
	b = appendBytes(b, r.Export)
	return EncodeFrame(TypeManifest, b)
}

// --- decoding ---

// reader is a bounds-checked cursor over a message payload. Errors
// accumulate; finish reports the first one (or trailing garbage).
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = decodeErr(format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.fail("truncated message")
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *reader) u8() byte {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (r *reader) u32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint32(v)
}

func (r *reader) u64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// int32v decodes a u32 that must fit a non-negative int.
func (r *reader) int32v() int {
	v := r.u32()
	if v > math.MaxInt32 {
		r.fail("count %d out of range", v)
		return 0
	}
	return int(v)
}

// int64v decodes a u64 carrying an int64 that must be non-negative and
// fit the platform int.
func (r *reader) int64v() int {
	v := int64(r.u64())
	if v < 0 || uint64(v) > math.MaxInt {
		r.fail("value %d out of range", v)
		return 0
	}
	return int(v)
}

func (r *reader) str() string { return string(r.take(r.int32v())) }

// bytesv decodes a u32-prefixed byte string. The result aliases the
// payload (which the decoders own), avoiding a copy of contents and VOs.
func (r *reader) bytesv() []byte {
	v := r.take(r.int32v())
	if v == nil || len(v) == 0 {
		return nil
	}
	return v
}

// count validates an element count against the remaining bytes at a
// minimum encoded width per element, before any slice allocation.
func (r *reader) count(minWidth int) int {
	n := r.int32v()
	if r.err != nil {
		return 0
	}
	if n > (len(r.b)-r.off)/minWidth {
		r.fail("count %d exceeds remaining payload", n)
		return 0
	}
	return n
}

func (r *reader) searchStats(st *SearchStats) {
	st.QueryTerms = r.int32v()
	st.EntriesRead = r.int32v()
	st.EntriesPerTerm = r.f64()
	st.PctListRead = r.f64()
	st.BlockReads = int64(r.u64())
	st.RandomReads = int64(r.u64())
	st.IOMillis = r.f64()
	st.VOBytes = r.int32v()
	st.ServerMillis = r.f64()
}

// minHitBytes is the smallest encoded Hit (empty content).
const minHitBytes = 8 + 8 + 4

func (r *reader) searchResponse(out *SearchResponse) {
	out.Query = r.str()
	out.R = r.int32v()
	out.Algo = r.str()
	out.Scheme = r.str()
	out.Generation = r.u64()
	n := r.count(minHitBytes)
	if r.err != nil {
		return
	}
	if n > 0 { // zero-count fields stay nil, mirroring the encoder's input
		out.Hits = make([]Hit, n)
		for i := range out.Hits {
			out.Hits[i].DocID = r.int64v()
			out.Hits[i].Score = r.f64()
			out.Hits[i].Content = r.bytesv()
		}
	}
	out.VO = r.bytesv()
	r.searchStats(&out.Stats)
}

func (r *reader) finish(what string) error {
	if r.err != nil {
		return fmt.Errorf("%w (%s)", r.err, what)
	}
	if r.off != len(r.b) {
		return decodeErr("%s: %d trailing bytes", what, len(r.b)-r.off)
	}
	return nil
}

// DecodeSearchResponse parses an EncodeSearchResponse frame.
func DecodeSearchResponse(frame []byte) (*SearchResponse, error) {
	raw, err := framePayload(frame, TypeSearch)
	if err != nil {
		return nil, err
	}
	r := reader{b: raw}
	out := &SearchResponse{}
	r.searchResponse(out)
	if err := r.finish("search response"); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeBatchSearchResponse parses an EncodeBatchSearchResponse frame.
func DecodeBatchSearchResponse(frame []byte) (*BatchSearchResponse, error) {
	raw, err := framePayload(frame, TypeBatch)
	if err != nil {
		return nil, err
	}
	r := reader{b: raw}
	n := r.count(1)
	out := &BatchSearchResponse{}
	if r.err == nil && n > 0 {
		out.Results = make([]BatchSearchResult, n)
		for i := range out.Results {
			switch r.u8() {
			case 0:
				e := &ErrorBody{}
				e.Code = r.str()
				e.Message = r.str()
				out.Results[i].Error = e
			case 1:
				resp := &SearchResponse{}
				r.searchResponse(resp)
				out.Results[i].Response = resp
			default:
				r.fail("bad batch result tag")
			}
			if r.err != nil {
				break
			}
		}
	}
	if err := r.finish("batch response"); err != nil {
		return nil, err
	}
	return out, nil
}

// minShardBytes is the smallest encoded SearchResponse (all fields empty).
const minShardBytes = 4 + 4 + 4 + 4 + 8 + 4 + 4 + (4 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + 8)

// DecodeShardedSearchResponse parses an EncodeShardedSearchResponse frame.
func DecodeShardedSearchResponse(frame []byte) (*ShardedSearchResponse, error) {
	raw, err := framePayload(frame, TypeSharded)
	if err != nil {
		return nil, err
	}
	r := reader{b: raw}
	out := &ShardedSearchResponse{}
	out.Query = r.str()
	out.R = r.int32v()
	out.Algo = r.str()
	out.Scheme = r.str()
	out.Generation = r.u64()
	if n := r.count(minShardBytes); r.err == nil && n > 0 {
		out.Shards = make([]SearchResponse, n)
		for i := range out.Shards {
			r.searchResponse(&out.Shards[i])
			if r.err != nil {
				break
			}
		}
	}
	if n := r.count(4 + 8 + 8 + 8); r.err == nil && n > 0 {
		out.Merged = make([]MergedHit, n)
		for i := range out.Merged {
			out.Merged[i].Shard = r.int32v()
			out.Merged[i].DocID = r.int64v()
			out.Merged[i].GlobalID = r.int64v()
			out.Merged[i].Score = r.f64()
		}
	}
	out.Stats.Shards = r.int32v()
	out.Stats.EntriesRead = r.int32v()
	out.Stats.VOBytes = r.int32v()
	out.Stats.IOMillis = r.f64()
	out.Stats.ServerMillis = r.f64()
	if err := r.finish("sharded response"); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeManifestResponse parses an EncodeManifestResponse frame.
func DecodeManifestResponse(frame []byte) (*ManifestResponse, error) {
	raw, err := framePayload(frame, TypeManifest)
	if err != nil {
		return nil, err
	}
	r := reader{b: raw}
	out := &ManifestResponse{}
	out.Format = r.str()
	out.Export = r.bytesv()
	if err := r.finish("manifest response"); err != nil {
		return nil, err
	}
	return out, nil
}

// framePayload decodes a frame and checks its payload type.
func framePayload(frame []byte, want byte) ([]byte, error) {
	typ, raw, err := DecodeFrame(frame)
	if err != nil {
		return nil, err
	}
	if typ != want {
		return nil, decodeErr("payload type %d, want %d", typ, want)
	}
	return raw, nil
}
