package wire

import (
	"container/list"
	"crypto/sha256"
	"sync"
)

// Deflate memoisation for the serving hot path. EncodeFrame is a pure
// function of (type, raw payload), and the only expensive part of it is
// deflate: a hot query replayed from the VO cache produces the identical
// raw payload on every hit, so the compressed bytes are remembered keyed
// by the payload's SHA-256. A hit costs one hash over the raw bytes
// (hardware-accelerated, ~30x faster than deflate) instead of a fresh
// compression. Because the stored bytes ARE a previous EncodeFrame's
// deflate output, memoised and non-memoised encodes are byte-identical by
// construction — the determinism contract in the frame-layout comment
// survives untouched. Incompressible payloads are remembered too (as an
// empty entry), so they are not re-deflated-and-discarded on every hit.
const (
	// memoMaxBytes bounds the memo's stored compressed bytes (LRU beyond).
	memoMaxBytes = 64 << 20
	// memoMaxEntryBytes skips memoising huge one-off payloads whose raw
	// hash cost already dwarfs any replay saving.
	memoMaxEntryBytes = 4 << 20
)

type memoEntry struct {
	key  [sha256.Size]byte
	data []byte // nil: compression does not pay for this payload
}

var deflateMemo = struct {
	mu    sync.Mutex
	m     map[[sha256.Size]byte]*list.Element // values: *memoEntry
	lru   *list.List                          // front = most recent
	bytes int64
}{m: make(map[[sha256.Size]byte]*list.Element), lru: list.New()}

// memoEntryCost charges key, slice header and bookkeeping per entry.
func memoEntryCost(data []byte) int64 { return int64(len(data)) + sha256.Size + 64 }

// memoGet returns the remembered deflate output (data, true), the
// remembered "does not compress" verdict (nil, true), or a miss. The
// returned slice is shared and immutable; callers copy it into their
// frame buffer.
func memoGet(key [sha256.Size]byte) ([]byte, bool) {
	deflateMemo.mu.Lock()
	defer deflateMemo.mu.Unlock()
	elem, ok := deflateMemo.m[key]
	if !ok {
		return nil, false
	}
	deflateMemo.lru.MoveToFront(elem)
	return elem.Value.(*memoEntry).data, true
}

// memoPut remembers data (or the nil "does not compress" verdict) for
// key, evicting least-recently-used entries beyond the byte bound.
func memoPut(key [sha256.Size]byte, data []byte) {
	if len(data) > memoMaxEntryBytes {
		return
	}
	deflateMemo.mu.Lock()
	defer deflateMemo.mu.Unlock()
	if _, ok := deflateMemo.m[key]; ok {
		return // concurrent encode of the same payload won the race
	}
	deflateMemo.m[key] = deflateMemo.lru.PushFront(&memoEntry{key: key, data: data})
	deflateMemo.bytes += memoEntryCost(data)
	for deflateMemo.bytes > memoMaxBytes {
		back := deflateMemo.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*memoEntry)
		deflateMemo.lru.Remove(back)
		delete(deflateMemo.m, e.key)
		deflateMemo.bytes -= memoEntryCost(e.data)
	}
}
