package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

func sampleSearchResponse() *SearchResponse {
	return &SearchResponse{
		Query: "rose garden", R: 3, Algo: "tnra", Scheme: "cmht",
		Generation: 7,
		Hits: []Hit{
			{DocID: 12, Score: 0.91, Content: []byte("full document body one")},
			{DocID: 7, Score: 0.5, Content: bytes.Repeat([]byte("lorem ipsum "), 200)},
			{DocID: 0, Score: math.Inf(1), Content: nil},
		},
		VO: []byte{0x00, 0x01, 0xfe, 0xff, 0x10},
		Stats: SearchStats{
			QueryTerms: 2, EntriesRead: 40, EntriesPerTerm: 20,
			PctListRead: 0.3, BlockReads: 9, RandomReads: 1,
			IOMillis: 0.25, VOBytes: 5, ServerMillis: 1.5,
		},
	}
}

func TestSearchResponseRoundTrip(t *testing.T) {
	want := sampleSearchResponse()
	frame := EncodeSearchResponse(want)
	got, err := DecodeSearchResponse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestBatchSearchResponseRoundTrip(t *testing.T) {
	want := &BatchSearchResponse{Results: []BatchSearchResult{
		{Response: sampleSearchResponse()},
		{Error: &ErrorBody{Code: "bad_request", Message: "empty query"}},
		{Response: &SearchResponse{Query: "x", Algo: "tra", Scheme: "mht"}},
	}}
	got, err := DecodeBatchSearchResponse(EncodeBatchSearchResponse(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestShardedSearchResponseRoundTrip(t *testing.T) {
	want := &ShardedSearchResponse{
		Query: "alpha beta", R: 10, Algo: "tnra", Scheme: "cmht", Generation: 3,
		Shards: []SearchResponse{*sampleSearchResponse(), {Query: "alpha beta", Algo: "tnra", Scheme: "cmht"}},
		Merged: []MergedHit{
			{Shard: 0, DocID: 12, GlobalID: 12, Score: 0.91},
			{Shard: 1, DocID: 4, GlobalID: 10004, Score: 0.7},
		},
		Stats: ShardedSearchStats{Shards: 2, EntriesRead: 80, VOBytes: 10, IOMillis: 0.5, ServerMillis: 2},
	}
	got, err := DecodeShardedSearchResponse(EncodeShardedSearchResponse(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestManifestResponseRoundTrip(t *testing.T) {
	want := &ManifestResponse{Format: "atcx1", Export: bytes.Repeat([]byte{0xab, 0x01}, 700)}
	got, err := DecodeManifestResponse(EncodeManifestResponse(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// Encoding is deterministic — the VO-cache byte-identity guarantee and the
// deflate memo both rest on it. The memo path (second encode) must produce
// the identical bytes as the first (non-memoised) encode.
func TestEncodeDeterministicAndMemoised(t *testing.T) {
	r := sampleSearchResponse()
	first := EncodeSearchResponse(r)
	for i := 0; i < 3; i++ {
		if again := EncodeSearchResponse(r); !bytes.Equal(first, again) {
			t.Fatalf("encode %d differs from first encode", i+2)
		}
	}
	if len(first) < HeaderSize {
		t.Fatalf("frame shorter than its header")
	}
}

// Large compressible payloads must come out compressed (the flag is
// load-bearing for the bytes win); payloads below compressMin must not.
func TestCompressionThreshold(t *testing.T) {
	big := EncodeSearchResponse(sampleSearchResponse())
	if flags := binary.BigEndian.Uint16(big[6:]); flags&flagDeflate == 0 {
		t.Fatalf("compressible payload not compressed (flags %#x)", flags)
	}
	small := EncodeManifestResponse(&ManifestResponse{Format: "atcx1", Export: []byte("tiny")})
	if flags := binary.BigEndian.Uint16(small[6:]); flags&flagDeflate != 0 {
		t.Fatalf("sub-threshold payload compressed (flags %#x)", flags)
	}
}

// The tamper battery: every single-bit flip anywhere in a frame must be
// rejected — header fields fail structural checks, payload bits fail the
// CRC. No flip may decode successfully.
func TestFrameTamperBattery(t *testing.T) {
	frame := EncodeSearchResponse(sampleSearchResponse())
	for off := 0; off < len(frame); off++ {
		for bit := 0; bit < 8; bit++ {
			tampered := append([]byte(nil), frame...)
			tampered[off] ^= 1 << bit
			if _, err := DecodeSearchResponse(tampered); err == nil {
				t.Fatalf("bit %d of byte %d flipped, frame still decodes", bit, off)
			}
		}
	}
}

func TestDecodeFrameHostileInputs(t *testing.T) {
	good := EncodeSearchResponse(sampleSearchResponse())
	cases := map[string][]byte{
		"empty":     nil,
		"short":     good[:HeaderSize-1],
		"truncated": good[:len(good)-1],
		"overlong":  append(append([]byte(nil), good...), 0x00),
		"bad magic": append([]byte("XTWF"), good[4:]...),
	}
	// Declared length far beyond the cap.
	huge := append([]byte(nil), good...)
	binary.BigEndian.PutUint64(huge[12:], MaxPayloadBytes+1)
	cases["length beyond cap"] = huge
	// Unknown payload type.
	badType := append([]byte(nil), good...)
	badType[5] = TypeManifest + 1
	cases["unknown type"] = badType
	// Unknown flag bit.
	badFlags := append([]byte(nil), good...)
	badFlags[6] |= 0x80
	cases["unknown flags"] = badFlags
	// Future version.
	badVer := append([]byte(nil), good...)
	badVer[4] = FrameVersion + 1
	cases["future version"] = badVer
	for name, b := range cases {
		if _, _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: decoded successfully", name)
		} else if !errors.Is(err, ErrFrame) {
			t.Errorf("%s: error %v does not wrap ErrFrame", name, err)
		}
	}
}

// A compressed stream whose raw-length prefix lies (either direction) must
// be rejected, not silently truncated or over-read.
func TestInflateLengthPrefixMismatch(t *testing.T) {
	raw := bytes.Repeat([]byte("abcdefgh"), 200)
	payload := deflatePayload(raw)
	if payload == nil {
		t.Fatal("deflate failed")
	}
	for _, lie := range []uint64{uint64(len(raw)) - 1, uint64(len(raw)) + 1} {
		lying := append([]byte(nil), payload...)
		binary.BigEndian.PutUint64(lying, lie)
		if _, err := inflatePayload(lying); err == nil {
			t.Errorf("prefix lying %d (real %d): inflated successfully", lie, len(raw))
		}
	}
	if _, err := inflatePayload(payload[:4]); err == nil {
		t.Error("truncated prefix inflated successfully")
	}
}

func TestReadFrameMatchesDecodeFrame(t *testing.T) {
	frame := EncodeSearchResponse(sampleSearchResponse())
	typ, raw, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	typ2, raw2, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if typ != typ2 || !bytes.Equal(raw, raw2) {
		t.Fatal("ReadFrame and DecodeFrame disagree")
	}
	if _, _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-3])); err == nil {
		t.Fatal("truncated stream read successfully")
	}
}

// Messages structurally valid at the frame layer but rotten inside must
// fail with ErrDecode.
func TestDecodeHostileMessages(t *testing.T) {
	// A hit count larger than the remaining payload can back.
	b := appendStr(nil, "q")
	b = binary.BigEndian.AppendUint32(b, 1)
	b = appendStr(b, "tnra")
	b = appendStr(b, "cmht")
	b = binary.BigEndian.AppendUint64(b, 0)
	b = binary.BigEndian.AppendUint32(b, math.MaxUint32) // nhits
	if _, err := DecodeSearchResponse(EncodeFrame(TypeSearch, b)); err == nil {
		t.Fatal("hostile hit count decoded successfully")
	} else if !errors.Is(err, ErrDecode) {
		t.Fatalf("error %v does not wrap ErrDecode", err)
	}
	// Payload type crossed: a batch frame fed to the search decoder.
	batch := EncodeBatchSearchResponse(&BatchSearchResponse{})
	if _, err := DecodeSearchResponse(batch); err == nil {
		t.Fatal("cross-typed frame decoded successfully")
	}
	// Trailing garbage after a valid message.
	valid := appendSearchResponse(nil, sampleSearchResponse())
	if _, err := DecodeSearchResponse(EncodeFrame(TypeSearch, append(valid, 0xcc))); err == nil {
		t.Fatal("trailing bytes decoded successfully")
	} else if !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// The memo must evict under its byte bound instead of growing without
// limit, and a memo hit must serve the "incompressible" verdict too.
func TestMemoEvictionAndVerdicts(t *testing.T) {
	// Incompressible payload (pseudo-random) above compressMin: first
	// encode stores the nil verdict, second must hit it and still produce
	// an identical, uncompressed frame.
	raw := make([]byte, 4096)
	x := uint64(1)
	for i := range raw {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		raw[i] = byte(x)
	}
	f1 := EncodeFrame(TypeManifest, raw)
	f2 := EncodeFrame(TypeManifest, raw)
	if !bytes.Equal(f1, f2) {
		t.Fatal("memoised incompressible encode differs")
	}
	if flags := binary.BigEndian.Uint16(f1[6:]); flags&flagDeflate != 0 {
		t.Fatal("incompressible payload carries the deflate flag")
	}
}
