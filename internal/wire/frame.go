package wire

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Frame layout (all integers big-endian):
//
//	offset size
//	0      4   magic "ATWF"
//	4      1   format version (1)
//	5      1   payload type (TypeSearch..TypeManifest)
//	6      2   flags (bit 0: payload is deflate-compressed)
//	8      4   CRC-32C (Castagnoli) of the stored payload bytes
//	12     8   stored payload length
//	20     —   stored payload
//
// A compressed payload is `u64 raw length | deflate stream`; the CRC
// always covers the stored (possibly compressed) bytes, so corruption is
// detected before any decompression work happens. Compression is a pure
// function of the encoded message (fixed level, fixed threshold, applied
// only when it shrinks the payload), which keeps a server's frame for a
// given response byte-identical across cache hits, misses and replicas.

// ContentType is the negotiated media type of binary frames. A request
// whose Accept header lists it is answered with a frame; everything else
// gets JSON (docs/PROTOCOL.md "Binary framing").
const ContentType = "application/x-authtext-frame"

// FrameVersion is the frame format version this build speaks.
const FrameVersion = 1

// frameMagic begins every frame.
const frameMagic = "ATWF"

// HeaderSize is the fixed frame header length.
const HeaderSize = 20

// Payload types.
const (
	TypeSearch   byte = 1 // SearchResponse
	TypeBatch    byte = 2 // BatchSearchResponse
	TypeSharded  byte = 3 // ShardedSearchResponse
	TypeManifest byte = 4 // ManifestResponse
)

// flagDeflate marks a deflate-compressed payload.
const flagDeflate uint16 = 1 << 0

// MaxPayloadBytes caps the decoded (decompressed) payload a decoder will
// materialise. It matches the remote clients' response-buffer cap: the
// peer is untrusted, and an inflated length field must not allocate
// beyond real input.
const MaxPayloadBytes = 64 << 20

// compressMin is the smallest raw payload worth attempting to compress.
// Below it the deflate header overhead and the extra length word eat the
// savings; the exact value only changes which frames carry the flag, and
// is part of the deterministic encode.
const compressMin = 512

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrFrame reports any malformed, truncated or corrupted frame. All
// decode failures wrap it, so transports can classify frame damage with
// errors.Is.
var ErrFrame = errors.New("wire: bad frame")

func frameErr(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrFrame, fmt.Sprintf(format, args...))
}

// EncodeFrame wraps an encoded message payload in a frame, compressing it
// when that pays. Compression results are memoised by payload hash (see
// memo.go), so replaying a hot answer costs a hash, not a deflate. The
// raw slice is not retained.
func EncodeFrame(typ byte, raw []byte) []byte {
	payload, flags := raw, uint16(0)
	if len(raw) >= compressMin {
		key := sha256.Sum256(raw)
		if c, ok := memoGet(key); ok {
			if c != nil {
				payload, flags = c, flagDeflate
			}
		} else if c := deflatePayload(raw); c != nil && len(c) < len(raw) {
			payload, flags = c, flagDeflate
			memoPut(key, c)
		} else {
			memoPut(key, nil)
		}
	}
	out := make([]byte, 0, HeaderSize+len(payload))
	out = append(out, frameMagic...)
	out = append(out, FrameVersion, typ)
	out = binary.BigEndian.AppendUint16(out, flags)
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	out = binary.BigEndian.AppendUint64(out, uint64(len(payload)))
	return append(out, payload...)
}

// deflatePayload compresses raw behind a u64 raw-length prefix, returning
// nil when compression is unavailable (it never is for flate) or failed.
// BestSpeed keeps the server-side encode cost near memcpy rates while
// still roughly halving text-heavy payloads.
func deflatePayload(raw []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(raw) / 2)
	var lenPrefix [8]byte
	binary.BigEndian.PutUint64(lenPrefix[:], uint64(len(raw)))
	buf.Write(lenPrefix[:])
	fw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil
	}
	if _, err := fw.Write(raw); err != nil {
		return nil
	}
	if err := fw.Close(); err != nil {
		return nil
	}
	return buf.Bytes()
}

// DecodeFrame parses one complete frame from hostile input, returning the
// payload type and the decompressed message bytes. Every length is
// validated against the real input before allocation, and the CRC is
// checked before any decompression.
func DecodeFrame(b []byte) (typ byte, raw []byte, err error) {
	if len(b) < HeaderSize {
		return 0, nil, frameErr("short frame: %d bytes", len(b))
	}
	if string(b[:4]) != frameMagic {
		return 0, nil, frameErr("bad magic")
	}
	if v := b[4]; v != FrameVersion {
		return 0, nil, frameErr("unsupported frame version %d (this build speaks %d)", v, FrameVersion)
	}
	typ = b[5]
	if typ < TypeSearch || typ > TypeManifest {
		return 0, nil, frameErr("unknown payload type %d", typ)
	}
	flags := binary.BigEndian.Uint16(b[6:])
	if flags&^flagDeflate != 0 {
		return 0, nil, frameErr("unknown flags %#x", flags&^flagDeflate)
	}
	wantCRC := binary.BigEndian.Uint32(b[8:])
	length := binary.BigEndian.Uint64(b[12:])
	if length > MaxPayloadBytes {
		return 0, nil, frameErr("payload length %d exceeds cap %d", length, MaxPayloadBytes)
	}
	if uint64(len(b)-HeaderSize) != length {
		return 0, nil, frameErr("payload length %d, frame carries %d", length, len(b)-HeaderSize)
	}
	payload := b[HeaderSize:]
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return 0, nil, frameErr("payload fails its CRC (corrupted frame)")
	}
	if flags&flagDeflate == 0 {
		return typ, payload, nil
	}
	raw, err = inflatePayload(payload)
	if err != nil {
		return 0, nil, err
	}
	return typ, raw, nil
}

// inflatePayload reverses deflatePayload under MaxPayloadBytes.
func inflatePayload(payload []byte) ([]byte, error) {
	if len(payload) < 8 {
		return nil, frameErr("truncated compressed payload")
	}
	rawLen := binary.BigEndian.Uint64(payload)
	if rawLen > MaxPayloadBytes {
		return nil, frameErr("decompressed length %d exceeds cap %d", rawLen, MaxPayloadBytes)
	}
	fr := flate.NewReader(bytes.NewReader(payload[8:]))
	defer fr.Close()
	// Read one byte past the declared length so a stream that disagrees
	// with its own prefix is rejected instead of silently truncated.
	raw := make([]byte, 0, rawLen)
	limited := io.LimitReader(fr, int64(rawLen)+1)
	buf := bytes.NewBuffer(raw)
	if _, err := io.Copy(buf, limited); err != nil {
		return nil, frameErr("corrupt deflate stream: %v", err)
	}
	if uint64(buf.Len()) != rawLen {
		return nil, frameErr("decompressed to %d bytes, prefix claims %d", buf.Len(), rawLen)
	}
	return buf.Bytes(), nil
}

// ReadFrame reads one frame from a stream (header first, then exactly the
// declared payload), for transports that cannot slice a complete buffer.
// The same caps and checks as DecodeFrame apply.
func ReadFrame(r io.Reader) (typ byte, raw []byte, err error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, frameErr("reading header: %v", err)
	}
	length := binary.BigEndian.Uint64(hdr[12:])
	if length > MaxPayloadBytes {
		return 0, nil, frameErr("payload length %d exceeds cap %d", length, MaxPayloadBytes)
	}
	frame := make([]byte, 0, HeaderSize+int(length))
	frame = append(frame, hdr[:]...)
	// Chunked reads bound allocation to real input even though length is
	// already capped: a one-packet attacker cannot make us commit 64 MB.
	const chunk = 1 << 20
	for uint64(len(frame)-HeaderSize) < length {
		take := length - uint64(len(frame)-HeaderSize)
		if take > chunk {
			take = chunk
		}
		old := len(frame)
		frame = append(frame, make([]byte, take)...)
		if _, err := io.ReadFull(r, frame[old:]); err != nil {
			return 0, nil, frameErr("truncated payload: %v", err)
		}
	}
	return DecodeFrame(frame)
}

// f64 round-trips float64 bit patterns exactly (NaN payloads included).
func f64bits(f float64) uint64 { return math.Float64bits(f) }
