// Package okapi implements the Okapi BM25 similarity formulation of §2.1
// (Formula 1):
//
//	S(d|Q) = Σ_{t∈Q} w_{Q,t} · w_{d,t}
//	K_d    = k1·((1−b) + b·W_d/W_A)
//	w_{d,t} = (k1+1)·f_{d,t} / (K_d + f_{d,t})
//	w_{Q,t} = ln((n − f_t + 0.5)/(f_t + 0.5)) · f_{Q,t}
//
// with the recommended parameters k1 = 1.2 and b = 0.75.
package okapi

import "math"

// Recommended parameter settings from §2.1.
const (
	DefaultK1 = 1.2
	DefaultB  = 0.75
)

// Params carries the tunables of the similarity function.
type Params struct {
	K1 float64
	B  float64
}

// DefaultParams returns the paper's recommended settings.
func DefaultParams() Params { return Params{K1: DefaultK1, B: DefaultB} }

// Kd returns the document-length normaliser K_d for a document of length
// docLen given the collection's average document length avgLen.
func (p Params) Kd(docLen, avgLen float64) float64 {
	if avgLen <= 0 {
		avgLen = 1
	}
	return p.K1 * ((1 - p.B) + p.B*docLen/avgLen)
}

// DocWeight returns w_{d,t}: the normalised significance of a term occurring
// fdt times in a document of length docLen.
func (p Params) DocWeight(fdt int, docLen, avgLen float64) float64 {
	if fdt <= 0 {
		return 0
	}
	f := float64(fdt)
	return (p.K1 + 1) * f / (p.Kd(docLen, avgLen) + f)
}

// IDF returns the query-side inverse document frequency factor
// ln((n − ft + 0.5)/(ft + 0.5)), clamped at zero. The clamp matters for
// terms that occur in more than half the collection (possible once
// stopwords are removed but a term is still very common): a negative weight
// would break the monotonicity that the threshold algorithms of §3.3/§3.4
// rely on. The clamp is applied identically by owner, server and client.
func IDF(n, ft int) float64 {
	if ft <= 0 || n <= 0 || ft > n {
		return 0
	}
	v := math.Log((float64(n) - float64(ft) + 0.5) / (float64(ft) + 0.5))
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}

// QueryWeight returns w_{Q,t} = IDF(n, ft) · f_{Q,t}.
func QueryWeight(n, ft, fQt int) float64 {
	if fQt <= 0 {
		return 0
	}
	return IDF(n, ft) * float64(fQt)
}
