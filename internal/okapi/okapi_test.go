package okapi

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDefaults(t *testing.T) {
	p := DefaultParams()
	if p.K1 != 1.2 || p.B != 0.75 {
		t.Fatalf("defaults %+v, want k1=1.2 b=0.75", p)
	}
}

func TestKd(t *testing.T) {
	p := DefaultParams()
	// Average-length document: Kd = k1.
	if got := p.Kd(100, 100); !almost(got, 1.2, 1e-12) {
		t.Fatalf("Kd(avg) = %v, want 1.2", got)
	}
	// Twice-average document: Kd = k1*(0.25 + 0.75*2) = 1.2*1.75 = 2.1.
	if got := p.Kd(200, 100); !almost(got, 2.1, 1e-12) {
		t.Fatalf("Kd(2*avg) = %v, want 2.1", got)
	}
	// Degenerate avgLen guards.
	if got := p.Kd(10, 0); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("Kd with avgLen=0 = %v", got)
	}
}

func TestDocWeight(t *testing.T) {
	p := DefaultParams()
	if got := p.DocWeight(0, 100, 100); got != 0 {
		t.Fatalf("DocWeight(0) = %v, want 0", got)
	}
	// fdt=1, avg-length doc: 2.2*1/(1.2+1) = 1.
	if got := p.DocWeight(1, 100, 100); !almost(got, 1.0, 1e-12) {
		t.Fatalf("DocWeight(1,avg) = %v, want 1", got)
	}
	// Saturation: weight approaches k1+1 as fdt grows.
	if got := p.DocWeight(10000, 100, 100); got >= p.K1+1 || got < 2.19 {
		t.Fatalf("DocWeight(large) = %v, want just below 2.2", got)
	}
}

func TestDocWeightMonotoneInFdt(t *testing.T) {
	p := DefaultParams()
	f := func(a, b uint8) bool {
		fa, fb := int(a)+1, int(a)+1+int(b)
		return p.DocWeight(fa, 120, 100) <= p.DocWeight(fb, 120, 100)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDocWeightDecreasingInDocLen(t *testing.T) {
	// Heuristic (c) of §2.1: documents containing many terms get less weight.
	p := DefaultParams()
	if p.DocWeight(3, 50, 100) <= p.DocWeight(3, 500, 100) {
		t.Fatal("longer document did not get a smaller weight")
	}
}

func TestIDF(t *testing.T) {
	// Figure 6's "in" with ft=5 gives wQ,t = 1.0986 = ln 3 for the n that
	// satisfies (n-5+0.5)/5.5 = 3, i.e. n = 21. Check our formula there.
	if got := IDF(21, 5); !almost(got, math.Log(3), 1e-12) {
		t.Fatalf("IDF(21,5) = %v, want ln3", got)
	}
	// Rare term gets a bigger weight than common term (heuristic a).
	if IDF(1000, 2) <= IDF(1000, 500) {
		t.Fatal("rare term not favoured")
	}
	// Clamp: term in >half the collection.
	if got := IDF(10, 9); got != 0 {
		t.Fatalf("IDF(10,9) = %v, want 0 (clamped)", got)
	}
	if IDF(0, 5) != 0 || IDF(10, 0) != 0 {
		t.Fatal("degenerate inputs not clamped")
	}
}

func TestQueryWeight(t *testing.T) {
	if got := QueryWeight(21, 5, 2); !almost(got, 2*math.Log(3), 1e-12) {
		t.Fatalf("QueryWeight fQt=2 = %v", got)
	}
	if QueryWeight(21, 5, 0) != 0 {
		t.Fatal("zero query frequency should weigh 0")
	}
}

func TestIDFNonNegativeProperty(t *testing.T) {
	f := func(n, ft uint16) bool {
		return IDF(int(n), int(ft)) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
