package linkgraph

import (
	"math"
	"testing"
)

func TestPageRankSumsToOne(t *testing.T) {
	g := Synthetic(200, 4, 1)
	rank, err := g.PageRank(0.85, 100, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range rank {
		sum += v
		if v <= 0 {
			t.Fatal("non-positive rank")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ranks sum to %v, want 1", sum)
	}
}

func TestPageRankHubOutranksLeaf(t *testing.T) {
	// Star graph: everyone links to document 0.
	g := NewGraph(10)
	for d := 1; d < 10; d++ {
		if err := g.AddLink(d, 0); err != nil {
			t.Fatal(err)
		}
	}
	rank, err := g.PageRank(0.85, 100, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d < 10; d++ {
		if rank[0] <= rank[d] {
			t.Fatalf("hub rank %v not above leaf %v", rank[0], rank[d])
		}
	}
}

func TestPageRankDanglingNodes(t *testing.T) {
	// A graph where document 1 has no outlinks must still converge with
	// total mass 1.
	g := NewGraph(3)
	if err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(2, 1); err != nil {
		t.Fatal(err)
	}
	rank, err := g.PageRank(0.85, 200, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range rank {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum %v", sum)
	}
	if rank[1] <= rank[0] {
		t.Fatal("the only linked-to document must rank highest")
	}
}

func TestNormalized(t *testing.T) {
	g := Synthetic(100, 3, 2)
	norm, err := g.Normalized(0.85, 100, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	maxSeen := 0.0
	for _, v := range norm {
		if v < 0 || v > 1 {
			t.Fatalf("normalized rank %v outside [0,1]", v)
		}
		if v > maxSeen {
			maxSeen = v
		}
	}
	if math.Abs(maxSeen-1) > 1e-12 {
		t.Fatalf("max normalized rank %v, want 1", maxSeen)
	}
}

func TestSyntheticDeterministicAndSkewed(t *testing.T) {
	a := Synthetic(300, 3, 7)
	b := Synthetic(300, 3, 7)
	if a.Links() != b.Links() {
		t.Fatal("not deterministic")
	}
	norm, err := a.Normalized(0.85, 100, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	// Preferential attachment: most documents far below the top authority.
	below := 0
	for _, v := range norm {
		if v < 0.25 {
			below++
		}
	}
	if below < len(norm)/2 {
		t.Fatalf("authority distribution not skewed: %d/%d below 0.25", below, len(norm))
	}
}

func TestGraphValidation(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddLink(0, 5); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	if err := g.AddLink(-1, 0); err == nil {
		t.Fatal("negative link accepted")
	}
	if err := g.AddLink(1, 1); err != nil {
		t.Fatal("self link should be silently ignored")
	}
	if g.Links() != 0 {
		t.Fatal("self link stored")
	}
	if _, err := g.PageRank(1.5, 10, 1e-6); err == nil {
		t.Fatal("bad damping accepted")
	}
	if _, err := NewGraph(0).PageRank(0.85, 10, 1e-6); err == nil {
		t.Fatal("empty graph accepted")
	}
}
