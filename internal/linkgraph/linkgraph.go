// Package linkgraph is the substrate for the §5 future-work extension:
// "Web search engines may exploit ... the hyperlink structure among
// documents to boost the ranking of the authoritative documents". It
// provides a hyperlink graph representation, PageRank (Brin & Page, the
// paper's reference [4]) via power iteration, and a synthetic
// preferential-attachment generator for experiments.
package linkgraph

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Graph is a directed hyperlink graph over documents 0..N-1.
type Graph struct {
	N   int
	Out [][]int32 // Out[d] lists the documents d links to
}

// NewGraph creates an empty graph over n documents.
func NewGraph(n int) *Graph {
	return &Graph{N: n, Out: make([][]int32, n)}
}

// AddLink records a hyperlink from src to dst. Self-links are ignored
// (they would let a page vote for itself).
func (g *Graph) AddLink(src, dst int) error {
	if src < 0 || src >= g.N || dst < 0 || dst >= g.N {
		return fmt.Errorf("linkgraph: link %d→%d outside [0,%d)", src, dst, g.N)
	}
	if src == dst {
		return nil
	}
	g.Out[src] = append(g.Out[src], int32(dst))
	return nil
}

// Links returns the total number of edges.
func (g *Graph) Links() int {
	total := 0
	for _, out := range g.Out {
		total += len(out)
	}
	return total
}

// PageRank computes the stationary rank vector with the given damping
// factor (0.85 is customary) by power iteration, stopping after maxIters
// or when the L1 change drops below tol. Dangling documents distribute
// their mass uniformly. The result sums to 1.
func (g *Graph) PageRank(damping float64, maxIters int, tol float64) ([]float64, error) {
	if g.N == 0 {
		return nil, errors.New("linkgraph: empty graph")
	}
	if damping < 0 || damping >= 1 {
		return nil, fmt.Errorf("linkgraph: damping %v outside [0,1)", damping)
	}
	n := float64(g.N)
	rank := make([]float64, g.N)
	next := make([]float64, g.N)
	for i := range rank {
		rank[i] = 1 / n
	}
	for iter := 0; iter < maxIters; iter++ {
		var dangling float64
		for i := range next {
			next[i] = 0
		}
		for d, out := range g.Out {
			if len(out) == 0 {
				dangling += rank[d]
				continue
			}
			share := rank[d] / float64(len(out))
			for _, dst := range out {
				next[dst] += share
			}
		}
		base := (1-damping)/n + damping*dangling/n
		var delta float64
		for i := range next {
			v := base + damping*next[i]
			delta += math.Abs(v - rank[i])
			rank[i] = v
		}
		if delta < tol {
			break
		}
	}
	return rank, nil
}

// Normalized returns PageRank scaled into [0, 1] (maximum = 1), the form
// the authority boost expects.
func (g *Graph) Normalized(damping float64, maxIters int, tol float64) ([]float64, error) {
	rank, err := g.PageRank(damping, maxIters, tol)
	if err != nil {
		return nil, err
	}
	maxRank := 0.0
	for _, v := range rank {
		if v > maxRank {
			maxRank = v
		}
	}
	if maxRank == 0 {
		return rank, nil
	}
	out := make([]float64, len(rank))
	for i, v := range rank {
		out[i] = v / maxRank
	}
	return out, nil
}

// Synthetic grows a preferential-attachment graph: each new document links
// to `linksPerDoc` targets chosen proportionally to in-degree (plus one),
// yielding the heavy-tailed authority distribution of real web graphs.
func Synthetic(n, linksPerDoc int, seed int64) *Graph {
	g := NewGraph(n)
	if n < 2 {
		return g
	}
	rng := rand.New(rand.NewSource(seed))
	indeg := make([]int, n)
	targets := []int{0}
	for d := 1; d < n; d++ {
		for l := 0; l < linksPerDoc; l++ {
			// Preferential attachment: sample from the multiset of
			// endpoints seen so far, mixed with a uniform escape.
			var dst int
			if rng.Float64() < 0.2 || len(targets) == 0 {
				dst = rng.Intn(d)
			} else {
				dst = targets[rng.Intn(len(targets))]
			}
			if dst == d {
				continue
			}
			if err := g.AddLink(d, dst); err == nil {
				indeg[dst]++
				targets = append(targets, dst)
			}
		}
	}
	return g
}
