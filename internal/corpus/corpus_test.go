package corpus

import (
	"testing"

	"authtext/internal/index"
)

func TestWordUniqueness(t *testing.T) {
	seen := make(map[string]int)
	for i := 0; i < 50000; i++ {
		w := word(i)
		if prev, dup := seen[w]; dup {
			t.Fatalf("word collision: rank %d and %d both map to %q", prev, i, w)
		}
		seen[w] = i
		if len(w) < 3 {
			t.Fatalf("word %q too short", w)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Tiny()
	a := Generate(p)
	b := Generate(p)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if string(a[i].Content) != string(b[i].Content) {
			t.Fatalf("doc %d differs between runs", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	p := Tiny()
	docs := Generate(p)
	if len(docs) != p.Docs {
		t.Fatalf("%d docs, want %d", len(docs), p.Docs)
	}
	var total int
	for _, d := range docs {
		if len(d.Tokens) < 8 {
			t.Fatal("document below minimum length")
		}
		total += len(d.Tokens)
	}
	avg := float64(total) / float64(len(docs))
	if avg < p.AvgLen*0.7 || avg > p.AvgLen*1.4 {
		t.Fatalf("average length %.1f far from target %.1f", avg, p.AvgLen)
	}
}

// TestFig4Shape checks the distribution properties of Fig 4 on the small
// profile: a majority of very short lists and a longest list spanning a
// large fraction of the collection.
func TestFig4Shape(t *testing.T) {
	p := Small()
	docs := Generate(p)
	idx, err := index.Build(docs, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d := Describe(idx.ListLengths(), idx.N)
	if d.ShortShare < 0.35 {
		t.Fatalf("share of 2-5 entry lists = %.2f, want skewed (≥ 0.35)", d.ShortShare)
	}
	if d.MaxLenRatio < 0.3 {
		t.Fatalf("longest list covers %.2f of docs, want ≥ 0.3", d.MaxLenRatio)
	}
	if len(d.Cumulative) < 2 {
		t.Fatalf("cumulative curve too coarse: %+v", d.Cumulative)
	}
	last := d.Cumulative[len(d.Cumulative)-1]
	if last.Frac < 0.999 {
		t.Fatalf("cumulative curve does not reach 1: %+v", last)
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "wsj", "WSJ"} {
		if _, err := ProfileByName(name); err != nil {
			t.Fatalf("profile %q: %v", name, err)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestDescribeEdgeCases(t *testing.T) {
	d := Describe([]int{3, 4, 5, 2}, 10)
	if d.ShortShare != 1.0 {
		t.Fatalf("ShortShare = %v, want 1", d.ShortShare)
	}
	if d.MaxLen != 5 {
		t.Fatalf("MaxLen = %d", d.MaxLen)
	}
}
