// Package corpus generates synthetic document collections whose
// inverted-list length distribution reproduces the WSJ corpus of §4.1
// (DESIGN.md §3.1 documents the substitution).
//
// The WSJ properties the evaluation depends on:
//
//   - n = 172,961 documents averaging ≈ 3 KB;
//   - m = 181,978 dictionary terms after stopword and singleton removal;
//   - a highly skewed list-length distribution (Fig 4): more than 50 % of
//     terms have 2–5 postings while the longest list has 127,848 (≈ 0.74·n);
//   - log-normal-ish document lengths.
//
// Terms are drawn from a Zipf law over a synthetic vocabulary; scaled-down
// profiles keep the shape while shrinking n for CI and bench budgets.
package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"authtext/internal/index"
)

// Profile parameterises a synthetic collection.
type Profile struct {
	Name string
	// Docs is the collection size n.
	Docs int
	// Vocab is the size of the vocabulary documents draw from (the
	// dictionary ends up smaller after singleton removal).
	Vocab int
	// AvgLen is the mean document length in tokens.
	AvgLen float64
	// SigmaLen is the log-normal σ of document lengths.
	SigmaLen float64
	// ZipfS and ZipfV parameterise the term distribution
	// P(k) ∝ 1/(v+k)^s.
	ZipfS, ZipfV float64
	// Seed makes generation deterministic.
	Seed int64
}

// Tiny is a unit-test profile (hundreds of documents).
func Tiny() Profile {
	return Profile{Name: "tiny", Docs: 300, Vocab: 2000, AvgLen: 60, SigmaLen: 0.6, ZipfS: 1.35, ZipfV: 2, Seed: 1}
}

// Small is the go-test/bench profile (a few thousand documents).
func Small() Profile {
	return Profile{Name: "small", Docs: 3000, Vocab: 20000, AvgLen: 120, SigmaLen: 0.6, ZipfS: 1.3, ZipfV: 2, Seed: 2}
}

// Medium is the default experiment profile (tens of thousands of documents;
// the shape of every figure is stable at this scale).
func Medium() Profile {
	return Profile{Name: "medium", Docs: 20000, Vocab: 120000, AvgLen: 180, SigmaLen: 0.6, ZipfS: 1.25, ZipfV: 2, Seed: 3}
}

// WSJ is the full paper-scale profile (172,961 documents). Building all
// four authentication structures at this scale takes minutes and gigabytes;
// use it for headline numbers only.
func WSJ() Profile {
	return Profile{Name: "wsj", Docs: 172961, Vocab: 900000, AvgLen: 255, SigmaLen: 0.6, ZipfS: 1.22, ZipfV: 2, Seed: 4}
}

// ProfileByName resolves a profile name.
func ProfileByName(name string) (Profile, error) {
	switch strings.ToLower(name) {
	case "tiny":
		return Tiny(), nil
	case "small":
		return Small(), nil
	case "medium":
		return Medium(), nil
	case "wsj":
		return WSJ(), nil
	}
	return Profile{}, fmt.Errorf("corpus: unknown profile %q", name)
}

// word derives a deterministic pseudo-word for a vocabulary rank. Rank 0 is
// the most frequent term. Words are built from syllables so examples read
// plausibly; every word is ≥ 3 letters and never collides with another rank.
func word(rank int) string {
	syllables := []string{
		"ba", "co", "da", "fe", "gi", "ho", "ju", "ka", "le", "mi",
		"no", "pu", "ra", "se", "ti", "vo", "wa", "xe", "yi", "zu",
	}
	var b strings.Builder
	r := rank
	for {
		b.WriteString(syllables[r%len(syllables)])
		r = r / len(syllables)
		if r == 0 {
			break
		}
		r--
	}
	// Suffix with the rank to guarantee uniqueness for big vocabularies.
	fmt.Fprintf(&b, "%d", rank)
	return b.String()
}

// Generate produces the document collection for a profile.
func Generate(p Profile) []index.Document {
	rng := rand.New(rand.NewSource(p.Seed))
	zipf := rand.NewZipf(rng, p.ZipfS, p.ZipfV, uint64(p.Vocab-1))
	vocab := make([]string, p.Vocab)
	for i := range vocab {
		vocab[i] = word(i)
	}
	docs := make([]index.Document, p.Docs)
	mu := math.Log(p.AvgLen) - p.SigmaLen*p.SigmaLen/2
	for d := range docs {
		ln := int(math.Exp(rng.NormFloat64()*p.SigmaLen + mu))
		if ln < 8 {
			ln = 8
		}
		toks := make([]string, ln)
		for i := range toks {
			toks[i] = vocab[zipf.Uint64()]
		}
		content := []byte(fmt.Sprintf("synthetic-doc-%d %s", d, strings.Join(toks, " ")))
		docs[d] = index.Document{Content: content, Tokens: toks}
	}
	return docs
}

// Distribution summarises an inverted-list length distribution (the data of
// Fig 4).
type Distribution struct {
	Terms       int
	MaxLen      int
	MaxLenRatio float64 // longest list / n
	// ShortShare is the fraction of terms with 2–5 postings (the paper
	// reports > 50 % for WSJ).
	ShortShare float64
	// Cumulative holds (length bound, cumulative fraction of terms) pairs
	// at power-of-ten bounds, mirroring Fig 4's axes.
	Cumulative []CumPoint
}

// CumPoint is one point of the cumulative list-length distribution.
type CumPoint struct {
	MaxLen int
	Frac   float64
}

// Describe computes the distribution of the given list lengths for a
// collection of n documents.
func Describe(lengths []int, n int) Distribution {
	d := Distribution{Terms: len(lengths)}
	short := 0
	for _, l := range lengths {
		if l > d.MaxLen {
			d.MaxLen = l
		}
		if l >= 2 && l <= 5 {
			short++
		}
	}
	if n > 0 {
		d.MaxLenRatio = float64(d.MaxLen) / float64(n)
	}
	if len(lengths) > 0 {
		d.ShortShare = float64(short) / float64(len(lengths))
	}
	for bound := 10; ; bound *= 10 {
		cnt := 0
		for _, l := range lengths {
			if l <= bound {
				cnt++
			}
		}
		d.Cumulative = append(d.Cumulative, CumPoint{MaxLen: bound, Frac: float64(cnt) / float64(len(lengths))})
		if bound >= d.MaxLen {
			break
		}
	}
	return d
}
