package vo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Category classifies each byte of an encoded VO.
type Category int

const (
	// CatMeta covers framing: counts, identifiers, term names, positions.
	CatMeta Category = iota
	// CatData covers revealed leaf data: doc ids, frequencies, weights.
	CatData
	// CatDigest covers complementary Merkle digests.
	CatDigest
	// CatSig covers signatures.
	CatSig
	numCategories
)

// Breakdown reports encoded size per category, in bytes.
type Breakdown struct {
	Meta      int
	Data      int
	Digest    int
	Signature int
}

// Total returns the full encoded size.
func (b Breakdown) Total() int { return b.Meta + b.Data + b.Digest + b.Signature }

// DataDigestShare returns the data and digest percentages of the
// data+digest portion, the quantity Table 2 reports.
func (b Breakdown) DataDigestShare() (dataPct, digestPct float64) {
	t := b.Data + b.Digest
	if t == 0 {
		return 0, 0
	}
	return 100 * float64(b.Data) / float64(t), 100 * float64(b.Digest) / float64(t)
}

// VO is the verification object for one query result.
type VO struct {
	Algo   uint8 // core.Algo value
	Scheme uint8 // core.Scheme value
	// Generation echoes the serving collection's manifest generation
	// (0 for static collections). The client cross-checks it against its
	// own manifest, so an answer assembled under a different publication
	// state is flagged before any cryptographic work happens.
	Generation uint64
	Terms      []TermProof
	// Docs carries document-MHT proofs (TRA only), ascending by Doc.
	Docs []DocProof
	// ContentProof authenticates result-document contents against the
	// collection's document-hash tree (TNRA only; TRA binds contents
	// through the document-MHT roots).
	ContentProof *ContentProof
	// DictProof replaces per-term signatures in dictionary-MHT mode.
	DictProof *DictProof
	// VocabProofs hold non-membership proofs for out-of-dictionary query
	// tokens (extension; empty when the collection disables it).
	VocabProofs []VocabProof
	// AuthorityProof certifies A(d) for every revealed document when the
	// collection enables the §5 authority-boost extension.
	AuthorityProof *AuthorityProof
}

// TermProof authenticates the revealed prefix of one query term's list.
type TermProof struct {
	TermID uint32
	FT     uint32
	Name   string
	// KScore is the scoring prefix (popped entries + cut-off head);
	// KProof ≥ KScore extends it with buddy padding (CMHT).
	KScore uint32
	KProof uint32
	Docs   []uint32  // revealed doc ids, len KProof
	Freqs  []float32 // revealed frequencies, len KProof (TNRA), nil (TRA)
	// Digests: term-MHT multiproof (MHT) or partial-block chain proof (CMHT).
	Digests [][]byte
	Sig     []byte // nil in dictionary mode
}

// DocProof authenticates query-term frequencies of one encountered document
// against its document-MHT (Fig 8).
type DocProof struct {
	Doc       uint32
	LeafCount uint32
	InResult  bool
	// ContentHash is h(doc) for non-result documents; result documents are
	// delivered in full and hashed by the client.
	ContentHash []byte
	Positions   []uint32 // revealed leaf positions, ascending
	Terms       []uint32 // term id at each position
	Ws          []float32
	Digests     [][]byte
	Sig         []byte
}

// ContentProof is a multiproof over the collection's document-hash tree
// covering the result documents.
type ContentProof struct {
	Digests [][]byte
}

// DictProof authenticates all query-term structure roots with a single
// signature via the dictionary-MHT (§3.4 space optimisation).
type DictProof struct {
	M       uint32
	Digests [][]byte
	Sig     []byte
}

// VocabProof proves a query token absent from the dictionary via adjacent
// leaves of the name-ordered dictionary tree (extension).
type VocabProof struct {
	Token     string
	Positions []uint32
	Names     []string
	Digests   [][]byte
}

// AuthorityProof is a multiproof over the authority-MHT covering the
// revealed documents (ascending doc order; positions are the doc ids of
// the revealed set, which the client derives from the term proofs).
type AuthorityProof struct {
	Values  []float32
	Digests [][]byte
}

// positionRun is a maximal run of consecutive revealed leaf positions.
// Buddy inclusion (§3.3.2) reveals whole groups of adjacent leaves, so
// run-length encoding keeps the VO's position metadata from eating the
// digests it saves.
type positionRun struct {
	start  uint32
	length uint16
}

// On-wire size of a position run: u32 start + u16 length, then one
// u32 term id + f32 weight per revealed entry. Decode's pre-scan sizes
// the reveal arrays from these; keep them in lockstep with the encode
// loop and the decode parse loop.
const (
	runHeaderBytes = 4 + 2
	runEntryBytes  = 4 + 4
)

func positionRuns(positions []uint32) []positionRun {
	var runs []positionRun
	for i := 0; i < len(positions); {
		j := i + 1
		for j < len(positions) && positions[j] == positions[j-1]+1 && j-i < 0xFFFF {
			j++
		}
		runs = append(runs, positionRun{start: positions[i], length: uint16(j - i)})
		i = j
	}
	return runs
}

// ---------------------------------------------------------------------------
// Encoding

const magic = "AVO1"

var (
	// ErrTruncated indicates the buffer ended mid-structure.
	ErrTruncated = errors.New("vo: truncated")
	// ErrBadMagic indicates the buffer is not an encoded VO.
	ErrBadMagic = errors.New("vo: bad magic")
)

type writer struct {
	buf   []byte
	sizes [numCategories]int
}

// writerPool recycles encoder buffers across queries: Encode runs on the
// server's hot path, and regrowing a fresh append buffer for every VO was
// the dominant allocation. Encode copies the finished bytes out before
// returning the writer, so pooled capacity is retained but never aliased.
var writerPool = sync.Pool{New: func() interface{} { return &writer{} }}

func (w *writer) reset() {
	w.buf = w.buf[:0]
	w.sizes = [numCategories]int{}
}

func (w *writer) u8(c Category, v uint8) {
	w.buf = append(w.buf, v)
	w.sizes[c]++
}

func (w *writer) u16(c Category, v uint16) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
	w.sizes[c] += 2
}

func (w *writer) u32(c Category, v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
	w.sizes[c] += 4
}

func (w *writer) u64(c Category, v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
	w.sizes[c] += 8
}

func (w *writer) f32(c Category, v float32) { w.u32(c, math.Float32bits(v)) }

func (w *writer) bytes(c Category, b []byte) {
	w.buf = append(w.buf, b...)
	w.sizes[c] += len(b)
}

func (w *writer) str(c Category, s string) {
	w.u16(c, uint16(len(s)))
	w.buf = append(w.buf, s...)
	w.sizes[c] += len(s)
}

func (w *writer) digests(ds [][]byte, hashSize int) error {
	w.u16(CatMeta, uint16(len(ds)))
	for _, d := range ds {
		if len(d) != hashSize {
			return fmt.Errorf("vo: digest size %d, want %d", len(d), hashSize)
		}
		w.bytes(CatDigest, d)
	}
	return nil
}

// Encode serialises the VO and returns the bytes and the size breakdown.
// hashSize fixes the digest width on the wire. Encode is safe for
// concurrent use; the returned slice is freshly allocated and owned by the
// caller.
func Encode(v *VO, hashSize int) ([]byte, Breakdown, error) {
	w := writerPool.Get().(*writer)
	defer writerPool.Put(w)
	w.reset()
	w.bytes(CatMeta, []byte(magic))
	w.u8(CatMeta, v.Algo)
	w.u8(CatMeta, v.Scheme)
	w.u8(CatMeta, uint8(hashSize))

	var flags uint8
	if v.ContentProof != nil {
		flags |= 1
	}
	if v.DictProof != nil {
		flags |= 2
	}
	if v.AuthorityProof != nil {
		flags |= 4
	}
	if v.Generation != 0 {
		flags |= 8
	}
	w.u8(CatMeta, flags)
	if v.Generation != 0 {
		w.u64(CatMeta, v.Generation)
	}

	w.u16(CatMeta, uint16(len(v.Terms)))
	for i := range v.Terms {
		t := &v.Terms[i]
		if len(t.Docs) != int(t.KProof) {
			return nil, Breakdown{}, fmt.Errorf("vo: term %q docs %d != kProof %d", t.Name, len(t.Docs), t.KProof)
		}
		if t.Freqs != nil && len(t.Freqs) != int(t.KProof) {
			return nil, Breakdown{}, fmt.Errorf("vo: term %q freqs %d != kProof %d", t.Name, len(t.Freqs), t.KProof)
		}
		w.u32(CatMeta, t.TermID)
		w.u32(CatMeta, t.FT)
		w.str(CatMeta, t.Name)
		w.u32(CatMeta, t.KScore)
		w.u32(CatMeta, t.KProof)
		hasFreqs := uint8(0)
		if t.Freqs != nil {
			hasFreqs = 1
		}
		w.u8(CatMeta, hasFreqs)
		for _, d := range t.Docs {
			w.u32(CatData, d)
		}
		for _, f := range t.Freqs {
			w.f32(CatData, f)
		}
		if err := w.digests(t.Digests, hashSize); err != nil {
			return nil, Breakdown{}, err
		}
		w.u16(CatMeta, uint16(len(t.Sig)))
		w.bytes(CatSig, t.Sig)
	}

	w.u32(CatMeta, uint32(len(v.Docs)))
	for i := range v.Docs {
		d := &v.Docs[i]
		if len(d.Terms) != len(d.Positions) || len(d.Ws) != len(d.Positions) {
			return nil, Breakdown{}, fmt.Errorf("vo: doc %d ragged reveal arrays", d.Doc)
		}
		w.u32(CatMeta, d.Doc)
		w.u32(CatMeta, d.LeafCount)
		inRes := uint8(0)
		if d.InResult {
			inRes = 1
		}
		w.u8(CatMeta, inRes)
		w.u16(CatMeta, uint16(len(d.ContentHash)))
		w.bytes(CatDigest, d.ContentHash)
		runs := positionRuns(d.Positions)
		w.u16(CatMeta, uint16(len(runs)))
		j := 0
		for _, run := range runs {
			w.u32(CatMeta, run.start)
			w.u16(CatMeta, run.length)
			for k := uint16(0); k < run.length; k++ {
				w.u32(CatData, d.Terms[j])
				w.f32(CatData, d.Ws[j])
				j++
			}
		}
		if err := w.digests(d.Digests, hashSize); err != nil {
			return nil, Breakdown{}, err
		}
		w.u16(CatMeta, uint16(len(d.Sig)))
		w.bytes(CatSig, d.Sig)
	}

	if v.ContentProof != nil {
		if err := w.digests(v.ContentProof.Digests, hashSize); err != nil {
			return nil, Breakdown{}, err
		}
	}
	if v.DictProof != nil {
		w.u32(CatMeta, v.DictProof.M)
		if err := w.digests(v.DictProof.Digests, hashSize); err != nil {
			return nil, Breakdown{}, err
		}
		w.u16(CatMeta, uint16(len(v.DictProof.Sig)))
		w.bytes(CatSig, v.DictProof.Sig)
	}

	w.u16(CatMeta, uint16(len(v.VocabProofs)))
	for i := range v.VocabProofs {
		p := &v.VocabProofs[i]
		if len(p.Names) != len(p.Positions) {
			return nil, Breakdown{}, fmt.Errorf("vo: vocab proof %q ragged arrays", p.Token)
		}
		w.str(CatMeta, p.Token)
		w.u16(CatMeta, uint16(len(p.Positions)))
		for j := range p.Positions {
			w.u32(CatMeta, p.Positions[j])
			w.str(CatData, p.Names[j])
		}
		if err := w.digests(p.Digests, hashSize); err != nil {
			return nil, Breakdown{}, err
		}
	}

	if v.AuthorityProof != nil {
		w.u32(CatMeta, uint32(len(v.AuthorityProof.Values)))
		for _, a := range v.AuthorityProof.Values {
			w.f32(CatData, a)
		}
		if err := w.digests(v.AuthorityProof.Digests, hashSize); err != nil {
			return nil, Breakdown{}, err
		}
	}

	bd := Breakdown{
		Meta:      w.sizes[CatMeta],
		Data:      w.sizes[CatData],
		Digest:    w.sizes[CatDigest],
		Signature: w.sizes[CatSig],
	}
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out, bd, nil
}

// ---------------------------------------------------------------------------
// Decoding

type reader struct {
	buf []byte
	off int
}

func (r *reader) u8() (uint8, error) {
	if r.off+1 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if r.off+2 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) f32() (float32, error) {
	v, err := r.u32()
	return math.Float32frombits(v), err
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, ErrTruncated
	}
	v := make([]byte, n)
	copy(v, r.buf[r.off:])
	r.off += n
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	return string(b), err
}

// digests reads n fixed-width digests backed by one flat allocation:
// digest lists are the bulkiest part of a VO, and per-digest slices made
// the decoder's allocation count scale with proof size.
func (r *reader) digests(hashSize int) ([][]byte, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	total := int(n) * hashSize
	if r.off+total > len(r.buf) {
		return nil, ErrTruncated
	}
	flat := make([]byte, total)
	copy(flat, r.buf[r.off:])
	r.off += total
	out := make([][]byte, n)
	for i := range out {
		out[i] = flat[i*hashSize : (i+1)*hashSize : (i+1)*hashSize]
	}
	return out, nil
}

func (r *reader) sized() ([]byte, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	return r.bytes(int(n))
}

// Decode parses an encoded VO. The digest width is read from the header.
func Decode(b []byte) (*VO, error) {
	r := &reader{buf: b}
	m, err := r.bytes(len(magic))
	if err != nil || string(m) != magic {
		return nil, ErrBadMagic
	}
	v := &VO{}
	if v.Algo, err = r.u8(); err != nil {
		return nil, err
	}
	if v.Scheme, err = r.u8(); err != nil {
		return nil, err
	}
	hs, err := r.u8()
	if err != nil {
		return nil, err
	}
	hashSize := int(hs)
	if hashSize < 8 || hashSize > 32 {
		return nil, fmt.Errorf("vo: implausible hash size %d", hashSize)
	}
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	if flags&8 != 0 {
		if v.Generation, err = r.u64(); err != nil {
			return nil, err
		}
		if v.Generation == 0 {
			return nil, fmt.Errorf("vo: non-canonical zero generation")
		}
	}

	nTerms, err := r.u16()
	if err != nil {
		return nil, err
	}
	if nTerms > 0 {
		v.Terms = make([]TermProof, nTerms)
	}
	for i := range v.Terms {
		t := &v.Terms[i]
		if t.TermID, err = r.u32(); err != nil {
			return nil, err
		}
		if t.FT, err = r.u32(); err != nil {
			return nil, err
		}
		if t.Name, err = r.str(); err != nil {
			return nil, err
		}
		if t.KScore, err = r.u32(); err != nil {
			return nil, err
		}
		if t.KProof, err = r.u32(); err != nil {
			return nil, err
		}
		if t.KProof > uint32(len(b)) { // cheap bound before allocating
			return nil, ErrTruncated
		}
		hasFreqs, err := r.u8()
		if err != nil {
			return nil, err
		}
		if t.KProof > 0 {
			t.Docs = make([]uint32, t.KProof)
		}
		for j := range t.Docs {
			if t.Docs[j], err = r.u32(); err != nil {
				return nil, err
			}
		}
		if hasFreqs == 1 {
			t.Freqs = make([]float32, t.KProof)
			for j := range t.Freqs {
				if t.Freqs[j], err = r.f32(); err != nil {
					return nil, err
				}
			}
		}
		if t.Digests, err = r.digests(hashSize); err != nil {
			return nil, err
		}
		if t.Sig, err = r.sized(); err != nil {
			return nil, err
		}
	}

	nDocs, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nDocs > uint32(len(b)) {
		return nil, ErrTruncated
	}
	if nDocs > 0 {
		v.Docs = make([]DocProof, nDocs)
	}
	for i := range v.Docs {
		d := &v.Docs[i]
		if d.Doc, err = r.u32(); err != nil {
			return nil, err
		}
		if d.LeafCount, err = r.u32(); err != nil {
			return nil, err
		}
		inRes, err := r.u8()
		if err != nil {
			return nil, err
		}
		d.InResult = inRes == 1
		if d.ContentHash, err = r.sized(); err != nil {
			return nil, err
		}
		nRuns, err := r.u16()
		if err != nil {
			return nil, err
		}
		// Pre-scan the runs to size the reveal arrays with one allocation
		// each instead of append growth.
		totalRevealed := 0
		scan := r.off
		for runIdx := 0; runIdx < int(nRuns); runIdx++ {
			if scan+runHeaderBytes > len(r.buf) {
				return nil, ErrTruncated
			}
			length := int(binary.BigEndian.Uint16(r.buf[scan+4:]))
			scan += runHeaderBytes + runEntryBytes*length
			totalRevealed += length
		}
		if scan > len(r.buf) {
			return nil, ErrTruncated
		}
		if totalRevealed > 0 {
			d.Positions = make([]uint32, 0, totalRevealed)
			d.Terms = make([]uint32, 0, totalRevealed)
			d.Ws = make([]float32, 0, totalRevealed)
		}
		for runIdx := 0; runIdx < int(nRuns); runIdx++ {
			start, err := r.u32()
			if err != nil {
				return nil, err
			}
			length, err := r.u16()
			if err != nil {
				return nil, err
			}
			if int(length) > len(b) {
				return nil, ErrTruncated
			}
			for k := uint32(0); k < uint32(length); k++ {
				d.Positions = append(d.Positions, start+k)
				term, err := r.u32()
				if err != nil {
					return nil, err
				}
				wv, err := r.f32()
				if err != nil {
					return nil, err
				}
				d.Terms = append(d.Terms, term)
				d.Ws = append(d.Ws, wv)
			}
		}
		if d.Digests, err = r.digests(hashSize); err != nil {
			return nil, err
		}
		if d.Sig, err = r.sized(); err != nil {
			return nil, err
		}
	}

	if flags&1 != 0 {
		cp := &ContentProof{}
		if cp.Digests, err = r.digests(hashSize); err != nil {
			return nil, err
		}
		v.ContentProof = cp
	}
	if flags&2 != 0 {
		dp := &DictProof{}
		if dp.M, err = r.u32(); err != nil {
			return nil, err
		}
		if dp.Digests, err = r.digests(hashSize); err != nil {
			return nil, err
		}
		if dp.Sig, err = r.sized(); err != nil {
			return nil, err
		}
		v.DictProof = dp
	}

	nVocab, err := r.u16()
	if err != nil {
		return nil, err
	}
	if nVocab > 0 {
		v.VocabProofs = make([]VocabProof, nVocab)
	}
	for i := range v.VocabProofs {
		p := &v.VocabProofs[i]
		if p.Token, err = r.str(); err != nil {
			return nil, err
		}
		nPos, err := r.u16()
		if err != nil {
			return nil, err
		}
		if nPos > 0 {
			p.Positions = make([]uint32, nPos)
			p.Names = make([]string, nPos)
		}
		for j := 0; j < int(nPos); j++ {
			if p.Positions[j], err = r.u32(); err != nil {
				return nil, err
			}
			if p.Names[j], err = r.str(); err != nil {
				return nil, err
			}
		}
		if p.Digests, err = r.digests(hashSize); err != nil {
			return nil, err
		}
	}
	if flags&4 != 0 {
		ap := &AuthorityProof{}
		nVals, err := r.u32()
		if err != nil {
			return nil, err
		}
		if nVals > uint32(len(b)) {
			return nil, ErrTruncated
		}
		if nVals > 0 {
			ap.Values = make([]float32, nVals)
		}
		for i := range ap.Values {
			if ap.Values[i], err = r.f32(); err != nil {
				return nil, err
			}
		}
		if ap.Digests, err = r.digests(hashSize); err != nil {
			return nil, err
		}
		v.AuthorityProof = ap
	}
	if r.off != len(b) {
		return nil, errors.New("vo: trailing bytes")
	}
	return v, nil
}
