// Package vo defines the verification object (VO) returned by the search
// engine alongside each query result (§3.3, §3.4), its binary wire format,
// and the per-category size accounting behind Table 2 and the VO-size
// panels of Figs 13–15.
//
// The VO is the protocol's transferable proof: everything a client needs —
// beyond the owner's published manifest and public key — to re-derive the
// signed Merkle roots and check that the answer is the true, complete,
// correctly ordered top-r. internal/engine fills it in on the server,
// Encode turns it into the opaque byte string that crosses the trust
// boundary (in-process, or base64-inside-JSON over HTTP via
// internal/httpapi), and Decode rebuilds it on the client for
// internal/core's Verify. Decode validates structure only; all security
// decisions are Verify's. A VO that fails to decode is treated as
// tampering by the facade, never trusted. VOs from live collections
// carry the publication generation that produced them (flagged optional
// field, so static collections' VO bytes are unchanged); Verify
// cross-checks it against the manifest (docs/UPDATES.md).
//
// The wire format uses the entry sizes of Table 1 — 4-byte identifiers and
// frequencies, 16-byte digests, 128-byte signatures — so measured VO sizes
// are directly comparable with the paper's.
package vo
