package vo

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleVO(r *rand.Rand) *VO {
	digest := func() []byte {
		d := make([]byte, 16)
		r.Read(d)
		return d
	}
	v := &VO{Algo: uint8(1 + r.Intn(2)), Scheme: uint8(1 + r.Intn(2))}
	nTerms := 1 + r.Intn(4)
	for i := 0; i < nTerms; i++ {
		k := 1 + r.Intn(6)
		tp := TermProof{
			TermID: uint32(r.Intn(1000)),
			FT:     uint32(k + r.Intn(100)),
			Name:   "term" + string(rune('a'+i)),
			KScore: uint32(k),
			KProof: uint32(k),
			Docs:   make([]uint32, k),
			Sig:    bytes.Repeat([]byte{byte(i)}, 128),
		}
		for j := range tp.Docs {
			tp.Docs[j] = uint32(r.Intn(5000))
		}
		if v.Algo == 2 {
			tp.Freqs = make([]float32, k)
			for j := range tp.Freqs {
				tp.Freqs[j] = r.Float32()
			}
		}
		for d := 0; d < r.Intn(4); d++ {
			tp.Digests = append(tp.Digests, digest())
		}
		v.Terms = append(v.Terms, tp)
	}
	if v.Algo == 1 {
		nDocs := r.Intn(4)
		for i := 0; i < nDocs; i++ {
			dp := DocProof{
				Doc:       uint32(i * 7),
				LeafCount: uint32(5 + r.Intn(20)),
				InResult:  r.Intn(2) == 0,
				Sig:       bytes.Repeat([]byte{0xAB}, 128),
			}
			if !dp.InResult {
				dp.ContentHash = digest()
			}
			nPos := 1 + r.Intn(4)
			for j := 0; j < nPos; j++ {
				dp.Positions = append(dp.Positions, uint32(j))
				dp.Terms = append(dp.Terms, uint32(j*3))
				dp.Ws = append(dp.Ws, r.Float32())
			}
			for d := 0; d < r.Intn(3); d++ {
				dp.Digests = append(dp.Digests, digest())
			}
			v.Docs = append(v.Docs, dp)
		}
	} else if r.Intn(2) == 0 {
		v.ContentProof = &ContentProof{Digests: [][]byte{digest(), digest()}}
	}
	if r.Intn(3) == 0 {
		v.DictProof = &DictProof{M: uint32(1000 + r.Intn(1000)), Digests: [][]byte{digest()}}
	}
	if r.Intn(3) == 0 {
		v.VocabProofs = append(v.VocabProofs, VocabProof{
			Token:     "missing",
			Positions: []uint32{3, 4},
			Names:     []string{"miss", "mist"},
			Digests:   [][]byte{digest()},
		})
	}
	return v
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := sampleVO(r)
		enc, bd, err := Encode(v, 16)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		if bd.Total() != len(enc) {
			t.Logf("breakdown total %d != %d", bd.Total(), len(enc))
			return false
		}
		got, err := Decode(enc)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if !reflect.DeepEqual(v, got) {
			t.Logf("roundtrip mismatch:\n in: %+v\nout: %+v", v, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a vo")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil decoded")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	v := sampleVO(r)
	enc, _, err := Encode(v, 16)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	v := sampleVO(r)
	enc, _, err := Encode(v, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(enc, 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestEncodeRejectsRaggedStructures(t *testing.T) {
	v := &VO{Algo: 1, Scheme: 1, Terms: []TermProof{{Name: "x", KProof: 3, Docs: []uint32{1}}}}
	if _, _, err := Encode(v, 16); err == nil {
		t.Fatal("ragged term proof encoded")
	}
	v = &VO{Algo: 1, Scheme: 1, Docs: []DocProof{{Positions: []uint32{1}, Terms: []uint32{1, 2}, Ws: []float32{1}}}}
	if _, _, err := Encode(v, 16); err == nil {
		t.Fatal("ragged doc proof encoded")
	}
}

func TestEncodeRejectsWrongDigestWidth(t *testing.T) {
	v := &VO{Algo: 1, Scheme: 1, Terms: []TermProof{{
		Name: "x", KScore: 1, KProof: 1, Docs: []uint32{1},
		Digests: [][]byte{{1, 2, 3}},
	}}}
	if _, _, err := Encode(v, 16); err == nil {
		t.Fatal("narrow digest encoded")
	}
}

func TestBreakdownCategories(t *testing.T) {
	v := &VO{Algo: 2, Scheme: 2, Terms: []TermProof{{
		Name:   "abc",
		FT:     10,
		KScore: 2,
		KProof: 2,
		Docs:   []uint32{1, 2},
		Freqs:  []float32{0.5, 0.25},
		Digests: [][]byte{
			bytes.Repeat([]byte{1}, 16),
		},
		Sig: bytes.Repeat([]byte{2}, 128),
	}}}
	_, bd, err := Encode(v, 16)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Data != 2*4+2*4 {
		t.Fatalf("data bytes = %d, want 16", bd.Data)
	}
	if bd.Digest != 16 {
		t.Fatalf("digest bytes = %d, want 16", bd.Digest)
	}
	if bd.Signature != 128 {
		t.Fatalf("signature bytes = %d, want 128", bd.Signature)
	}
	dataPct, digestPct := bd.DataDigestShare()
	if dataPct+digestPct < 99.9 || dataPct+digestPct > 100.1 {
		t.Fatalf("shares %v + %v", dataPct, digestPct)
	}
	if dataPct != 50.0 {
		t.Fatalf("dataPct = %v, want 50", dataPct)
	}
}

func TestBreakdownShareEmpty(t *testing.T) {
	var bd Breakdown
	d, g := bd.DataDigestShare()
	if d != 0 || g != 0 {
		t.Fatal("empty breakdown share should be 0/0")
	}
}
