package vo

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzDecode exercises the VO parser with arbitrary bytes: it must never
// panic, and whatever it accepts must re-encode and decode to the same
// structure (a compromised server controls these bytes, so the parser is a
// security boundary).
func FuzzDecode(f *testing.F) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 8; i++ {
		enc, _, err := Encode(sampleVO(r), 16)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte("AVO1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return
		}
		hashSize := 16
		if len(data) > 6 {
			hashSize = int(data[6])
		}
		enc, _, err := Encode(v, hashSize)
		if err != nil {
			// Decoded structures can carry digests of a width the original
			// header declared; re-encoding under a mismatched width fails,
			// which is acceptable — the parser itself held up.
			return
		}
		v2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded VO failed to decode: %v", err)
		}
		enc2, _, err := Encode(v2, hashSize)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("encode/decode not idempotent")
		}
	})
}
