// Package demo provides the built-in document corpus and the .txt
// directory loader shared by the command-line tools (cmd/authsearch,
// cmd/authserved), so both index identical collections for the same
// inputs.
package demo

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"authtext"
)

// Texts is the built-in corpus: it paraphrases the paper's own subject
// matter, so queries like "inverted index", "threshold algorithm" or
// "merkle tree" return sensible results out of the box.
func Texts() []string {
	return []string{
		"Professional users in the financial and legal industries require integrity assurance from paid content services.",
		"A patent examiner using the web portal expects the same search results as the up-to-date CD-ROM edition.",
		"A breached server that is not detected in time may return incorrect results to its users.",
		"An attacker could make patents drop out of the search results by tampering with the index or the ranking function.",
		"Altered rankings divert the searcher's attention from certain patents by reordering the results.",
		"Spurious results with fake patents may discourage potential competitors from filing applications.",
		"Most text search engines rate document similarity with an inverted index over the dictionary terms.",
		"The frequency ordered inverted index stores impact entries sorted by descending term frequency.",
		"The Okapi formulation weighs terms by their frequency in the document and across the collection.",
		"A merkle hash tree authenticates a set of messages by signing only the digest of its root node.",
		"The verification object contains the digests needed to recompute the signed root of the tree.",
		"Threshold algorithms pop the entry with the highest term score and stop at the cut off threshold.",
		"Random access fetches the term frequencies of a document directly from its document record.",
		"Sorted access alone maintains lower and upper bounds for the score of every candidate document.",
		"Chains of block trees verify the leading blocks of a list with a single stored signature.",
		"Buddy leaves are cheaper to transmit than the digests that would otherwise cover their group.",
		"The user recomputes every score and checks that no excluded document can outrank the results.",
		"Signatures generated with the private key of the owner verify with the published public key.",
		"An audit trail archives the verification objects to justify any decision taken by the user.",
		"Query processing costs are dominated by the disk reads of inverted list blocks and records.",
	}
}

// Load reads every .txt file under dir (sorted by name) as one document
// each; with dir empty it returns the built-in corpus. names holds a
// display label per document (file base name, or demo-NN).
func Load(dir string) (docs []authtext.Document, names []string, err error) {
	if dir == "" {
		texts := Texts()
		docs = make([]authtext.Document, len(texts))
		names = make([]string, len(texts))
		for i, text := range texts {
			docs[i] = authtext.Document{Content: []byte(text)}
			names[i] = fmt.Sprintf("demo-%02d", i)
		}
		return docs, names, nil
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.txt"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(entries)
	if len(entries) == 0 {
		return nil, nil, fmt.Errorf("no .txt files in %s", dir)
	}
	for _, path := range entries {
		content, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		docs = append(docs, authtext.Document{Content: content})
		names = append(names, filepath.Base(path))
	}
	return docs, names, nil
}
