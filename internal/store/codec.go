package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Snapshot round-trip: a device is fully described by its parameters and
// raw block contents. Writes are owner-side only, so a restored device is
// immediately serviceable for the read-only query path.

// Data returns the raw device contents (block-granular, length
// Blocks()·BlockSize()). The slice aliases device memory; callers must
// treat it as read-only.
func (d *Device) Data() []byte { return d.data }

// AppendParams appends the canonical binary encoding of the parameters.
func AppendParams(b []byte, p Params) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(p.BlockSize))
	b = binary.BigEndian.AppendUint64(b, uint64(p.Seek.Nanoseconds()))
	b = binary.BigEndian.AppendUint64(b, uint64(p.Rotation.Nanoseconds()))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(p.TransferBytesPerSec))
	return b
}

// ParamsEncodedSize is the byte length AppendParams emits.
const ParamsEncodedSize = 4 + 8 + 8 + 8

// DecodeParams parses AppendParams output.
func DecodeParams(b []byte) (Params, error) {
	if len(b) < ParamsEncodedSize {
		return Params{}, errors.New("store: truncated params")
	}
	p := Params{
		BlockSize:           int(binary.BigEndian.Uint32(b)),
		Seek:                time.Duration(binary.BigEndian.Uint64(b[4:])),
		Rotation:            time.Duration(binary.BigEndian.Uint64(b[12:])),
		TransferBytesPerSec: math.Float64frombits(binary.BigEndian.Uint64(b[20:])),
	}
	if p.Seek < 0 || p.Rotation < 0 {
		return Params{}, errors.New("store: negative access times")
	}
	if math.IsNaN(p.TransferBytesPerSec) || math.IsInf(p.TransferBytesPerSec, 0) {
		return Params{}, errors.New("store: bad transfer rate")
	}
	return p, nil
}

// RestoreDevice reconstructs a device from its parameters and raw contents
// (a copy is taken). The data length must be block-granular; NewDevice's
// parameter validation applies.
func RestoreDevice(p Params, data []byte) (*Device, error) {
	d, err := RestoreDeviceShared(p, data)
	if err != nil {
		return nil, err
	}
	d.data = make([]byte, len(data))
	copy(d.data, data)
	return d, nil
}

// RestoreDeviceShared is RestoreDevice without the copy: the device reads
// straight from data (e.g. a read-only file mapping shared with the page
// cache). The caller owns data's lifetime — it must stay valid and
// unmodified for as long as the device is readable — and Corrupt must not
// be called on such a device (the backing may be write-protected).
func RestoreDeviceShared(p Params, data []byte) (*Device, error) {
	d, err := NewDevice(p)
	if err != nil {
		return nil, err
	}
	if len(data)%p.BlockSize != 0 {
		return nil, fmt.Errorf("store: restore: %d bytes not a multiple of block size %d",
			len(data), p.BlockSize)
	}
	d.data = data
	d.nblocks = int64(len(data) / p.BlockSize)
	return d, nil
}
