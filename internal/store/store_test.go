package store

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func newTestDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDeviceRejectsBadParams(t *testing.T) {
	p := DefaultParams()
	p.BlockSize = 16
	if _, err := NewDevice(p); err == nil {
		t.Fatal("tiny block size accepted")
	}
	p = DefaultParams()
	p.TransferBytesPerSec = 0
	if _, err := NewDevice(p); err == nil {
		t.Fatal("zero transfer rate accepted")
	}
}

func TestAllocWriteRoundTrip(t *testing.T) {
	d := newTestDevice(t)
	payload := bytes.Repeat([]byte{0xAB}, 2500) // 3 blocks at 1 KB
	ext := d.AllocWrite(payload)
	if ext.Blocks != 3 {
		t.Fatalf("blocks = %d, want 3", ext.Blocks)
	}
	if ext.Length != 2500 {
		t.Fatalf("length = %d, want 2500", ext.Length)
	}
	got, err := d.NewSession().ReadExtent(ext)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestAllocWriteEmptyStillTakesBlock(t *testing.T) {
	d := newTestDevice(t)
	ext := d.AllocWrite(nil)
	if ext.Blocks != 1 {
		t.Fatalf("empty write allocated %d blocks, want 1", ext.Blocks)
	}
}

func TestSequentialVsRandomAccounting(t *testing.T) {
	d := newTestDevice(t)
	a := d.AllocWrite(bytes.Repeat([]byte{1}, 4096)) // blocks 0-3
	b := d.AllocWrite(bytes.Repeat([]byte{2}, 4096)) // blocks 4-7
	s := d.NewSession()

	// First read: random. Next three: sequential.
	for i := int32(0); i < a.Blocks; i++ {
		if _, err := s.ReadBlock(a.Start + Addr(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.RandomReads != 1 || st.SeqReads != 3 {
		t.Fatalf("after extent a: random=%d seq=%d, want 1/3", st.RandomReads, st.SeqReads)
	}

	// b starts right after a's last block, so its first read is sequential.
	if _, err := s.ReadBlock(b.Start); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.SeqReads != 4 {
		t.Fatalf("adjacent extent first block not sequential: %+v", st)
	}

	// Jumping back is random.
	if _, err := s.ReadBlock(a.Start); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.RandomReads != 2 {
		t.Fatalf("backward jump not random: %+v", st)
	}
}

func TestSimTimeModel(t *testing.T) {
	p := Params{BlockSize: 1024, Seek: 4 * time.Millisecond, Rotation: 2 * time.Millisecond, TransferBytesPerSec: 1 << 20}
	d := MustDevice(p)
	ext := d.AllocWrite(bytes.Repeat([]byte{1}, 2048))
	s := d.NewSession()
	if _, err := s.ReadExtent(ext); err != nil {
		t.Fatal(err)
	}
	// 1 random (4+2 ms + ~1ms transfer) + 1 sequential (~1ms transfer).
	blockFrac := float64(1024) / float64(1<<20)
	transfer := time.Duration(blockFrac * float64(time.Second))
	want := 6*time.Millisecond + 2*transfer
	got := s.Stats().SimTime
	if got != want {
		t.Fatalf("SimTime = %v, want %v", got, want)
	}
}

func TestNewSessionStartsWithColdHead(t *testing.T) {
	d := newTestDevice(t)
	ext := d.AllocWrite(bytes.Repeat([]byte{1}, 2048))
	if _, err := d.NewSession().ReadExtent(ext); err != nil {
		t.Fatal(err)
	}
	// Reading the block right after another session's last-read one would
	// be sequential on a shared head; a fresh session must charge it as
	// random.
	s := d.NewSession()
	if _, err := s.ReadBlock(ext.Start); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.RandomReads != 1 || st.SeqReads != 0 {
		t.Fatalf("fresh session head not cold: %+v", st)
	}
}

// Sessions are independent: interleaved reads from two sessions must each
// see their own head position and their own counters, and concurrent
// sessions must not race (run with -race to enforce).
func TestSessionsIndependent(t *testing.T) {
	d := newTestDevice(t)
	ext := d.AllocWrite(bytes.Repeat([]byte{7}, 4096)) // blocks 0-3
	s1, s2 := d.NewSession(), d.NewSession()
	for i := int32(0); i < ext.Blocks; i++ {
		if _, err := s1.ReadBlock(ext.Start + Addr(i)); err != nil {
			t.Fatal(err)
		}
		// s2 jumps around between s1's reads; a shared head would turn
		// s1's sequential reads into random ones.
		if _, err := s2.ReadBlock(ext.Start + Addr((i*2)%4)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s1.Stats(); st.RandomReads != 1 || st.SeqReads != 3 {
		t.Fatalf("s1 head polluted by s2: %+v", st)
	}
	if st := s2.Stats(); st.BlockReads != 4 {
		t.Fatalf("s2 counters wrong: %+v", st)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := d.NewSession()
			for i := 0; i < 50; i++ {
				if _, err := s.ReadExtent(ext); err != nil {
					t.Error(err)
					return
				}
			}
			if st := s.Stats(); st.BlockReads != 50*int64(ext.Blocks) {
				t.Errorf("session counted %d block reads", st.BlockReads)
			}
		}()
	}
	wg.Wait()
}

func TestReadOutOfRange(t *testing.T) {
	d := newTestDevice(t)
	if _, err := d.NewSession().ReadBlock(0); err == nil {
		t.Fatal("read from empty device succeeded")
	}
	d.AllocWrite([]byte("x"))
	s := d.NewSession()
	if _, err := s.ReadBlock(5); err == nil {
		t.Fatal("out-of-range block read succeeded")
	}
	if _, err := s.ReadExtent(Extent{Start: 0, Blocks: 9, Length: 1}); err == nil {
		t.Fatal("out-of-range extent read succeeded")
	}
}

func TestStatsSubAndAdd(t *testing.T) {
	a := Stats{BlockReads: 10, RandomReads: 3, SeqReads: 7, BytesRead: 10240, SimTime: time.Second}
	b := Stats{BlockReads: 4, RandomReads: 1, SeqReads: 3, BytesRead: 4096, SimTime: 250 * time.Millisecond}
	diff := a.Sub(b)
	if diff.BlockReads != 6 || diff.RandomReads != 2 || diff.SeqReads != 4 || diff.SimTime != 750*time.Millisecond {
		t.Fatalf("Sub wrong: %+v", diff)
	}
	var total Stats
	total.Add(a)
	total.Add(b)
	if total.BlockReads != 14 || total.SimTime != 1250*time.Millisecond {
		t.Fatalf("Add wrong: %+v", total)
	}
}

func TestCorrupt(t *testing.T) {
	d := newTestDevice(t)
	ext := d.AllocWrite([]byte{0x01, 0x02, 0x03})
	if err := d.Corrupt(ext.Start, 1, 0xFF); err != nil {
		t.Fatal(err)
	}
	got, err := d.NewSession().ReadExtent(ext)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 0x02^0xFF {
		t.Fatalf("byte not flipped: %x", got[1])
	}
	if err := d.Corrupt(99, 0, 1); err == nil {
		t.Fatal("corrupt out-of-range block accepted")
	}
	if err := d.Corrupt(ext.Start, 4096, 1); err == nil {
		t.Fatal("corrupt out-of-range offset accepted")
	}
}
