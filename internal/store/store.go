// Package store simulates the block storage substrate of §4.1: a disk
// formatted with 1-Kbyte blocks whose access cost is dominated by seeks for
// random reads and by transfer time for sequential reads. The experiment
// harness charges every read against this model, which is what produces the
// I/O-time panels of Figs 13–15 (the paper's testbed disk is replaced by
// this simulator; DESIGN.md §3.4).
//
// The device is an append-only flat address space of fixed-size blocks.
// Structures (inverted lists, document records, auth blocks) are written as
// contiguous extents at build time and read back block-by-block at query
// time. A read is sequential when it targets the block immediately after the
// previously read one, random otherwise.
//
// The device itself is split into two halves so that a built collection can
// serve queries concurrently: Device holds the shared, immutable block
// contents and geometry, while every query opens its own Session carrying
// the mutable half of the model — the head position and the access
// statistics. Sessions never share state, so any number of them may read
// one device in parallel; each starts with a cold head, exactly like the
// per-query stats reset of the serialized engine, which keeps per-query
// costs identical to the numbers a one-query-at-a-time server reports.
package store

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Addr is a block number on the device.
type Addr int64

// Extent is a contiguous run of blocks.
type Extent struct {
	Start  Addr
	Blocks int32
	// Length is the payload length in bytes (≤ Blocks·BlockSize); reads
	// return exactly Length bytes.
	Length int64
}

// Params configures the block size and the access-cost model.
type Params struct {
	// BlockSize in bytes; the paper formats the disk with 1-Kbyte blocks.
	BlockSize int
	// Seek is the average head-positioning time charged per random access.
	Seek time.Duration
	// Rotation is the average rotational latency charged per random access.
	Rotation time.Duration
	// TransferBytesPerSec is the sustained media transfer rate; every block
	// read (random or sequential) is charged BlockSize/TransferBytesPerSec.
	TransferBytesPerSec float64
}

// DefaultParams models a Seagate-class 10K RPM SAS disk with 1-Kbyte blocks
// (the ST973401KC used in §4.1).
func DefaultParams() Params {
	return Params{
		BlockSize:           1024,
		Seek:                4500 * time.Microsecond,
		Rotation:            3000 * time.Microsecond,
		TransferBytesPerSec: 60 << 20, // 60 MB/s
	}
}

// Stats aggregates access counts and simulated time.
type Stats struct {
	BlockReads  int64
	RandomReads int64
	SeqReads    int64
	BytesRead   int64
	SimTime     time.Duration
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.BlockReads += other.BlockReads
	s.RandomReads += other.RandomReads
	s.SeqReads += other.SeqReads
	s.BytesRead += other.BytesRead
	s.SimTime += other.SimTime
}

// Sub returns s minus other (for snapshot-diff accounting).
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		BlockReads:  s.BlockReads - other.BlockReads,
		RandomReads: s.RandomReads - other.RandomReads,
		SeqReads:    s.SeqReads - other.SeqReads,
		BytesRead:   s.BytesRead - other.BytesRead,
		SimTime:     s.SimTime - other.SimTime,
	}
}

// Device is the shared, immutable half of the simulated disk: block
// contents and geometry. All mutation happens on the owner side — at build
// time through AllocWrite, or through the test-only Corrupt — before the
// device is published for serving; after that it is read-only and any
// number of Sessions may read it concurrently. All reads go through a
// Session, which carries the per-query head position and statistics.
type Device struct {
	p       Params
	data    []byte
	nblocks int64

	transferPerBlock time.Duration
	randomPenalty    time.Duration

	// fault, when set, fails every subsequent read. It exists for
	// deferred-integrity backings (a memory-mapped snapshot validates its
	// store section in the background and poisons the device on a CRC
	// mismatch) and may be set concurrently with active sessions.
	fault atomic.Pointer[error]
}

// NewDevice creates an empty device.
func NewDevice(p Params) (*Device, error) {
	if p.BlockSize < 64 {
		return nil, fmt.Errorf("store: block size %d too small", p.BlockSize)
	}
	if p.TransferBytesPerSec <= 0 {
		return nil, errors.New("store: non-positive transfer rate")
	}
	d := &Device{p: p}
	d.transferPerBlock = time.Duration(float64(p.BlockSize) / p.TransferBytesPerSec * float64(time.Second))
	d.randomPenalty = p.Seek + p.Rotation
	return d, nil
}

// MustDevice is NewDevice that panics on configuration errors.
func MustDevice(p Params) *Device {
	d, err := NewDevice(p)
	if err != nil {
		panic(err)
	}
	return d
}

// Params returns the device configuration.
func (d *Device) Params() Params { return d.p }

// BlockSize returns the configured block size in bytes.
func (d *Device) BlockSize() int { return d.p.BlockSize }

// Blocks returns the number of allocated blocks.
func (d *Device) Blocks() int64 { return d.nblocks }

// SizeBytes returns the total allocated size in bytes (block-granular).
func (d *Device) SizeBytes() int64 { return d.nblocks * int64(d.p.BlockSize) }

// AllocWrite appends data to the device, padding to a block boundary, and
// returns the extent it occupies. Writes are free: the cost model only
// charges reads, because index construction is an offline, owner-side step
// whose cost the paper reports separately from query processing. AllocWrite
// is a build-time operation and must not run concurrently with sessions.
func (d *Device) AllocWrite(data []byte) Extent {
	nb := (len(data) + d.p.BlockSize - 1) / d.p.BlockSize
	if nb == 0 {
		nb = 1
	}
	start := d.nblocks
	padded := nb * d.p.BlockSize
	d.data = append(d.data, data...)
	d.data = append(d.data, make([]byte, padded-len(data))...)
	d.nblocks += int64(nb)
	return Extent{Start: Addr(start), Blocks: int32(nb), Length: int64(len(data))}
}

// Session is one query's private view of the device: the disk-head position
// and the access statistics that the cost model accumulates per read. A
// session must not be shared between goroutines, but any number of sessions
// may read the same device concurrently. The zero session is not usable;
// obtain one from Device.NewSession.
type Session struct {
	d        *Device
	lastRead Addr
	stats    Stats
}

// NewSession opens a fresh read session with a cold head: its first read is
// charged as random, exactly as a fresh query on the serialized engine was.
func (d *Device) NewSession() *Session {
	return &Session{d: d, lastRead: -2}
}

// BlockSize returns the device's block size in bytes.
func (s *Session) BlockSize() int { return s.d.p.BlockSize }

// Poison makes every subsequent read on the device fail with err. Safe to
// call concurrently with active sessions (reads observe it atomically).
func (d *Device) Poison(err error) {
	if err == nil {
		return
	}
	d.fault.Store(&err)
}

// faultErr returns the poison error, if any.
func (d *Device) faultErr() error {
	if p := d.fault.Load(); p != nil {
		return *p
	}
	return nil
}

// ReadBlock reads one block, charging the cost model, and returns its bytes.
// The returned slice aliases device memory and must not be modified.
func (s *Session) ReadBlock(a Addr) ([]byte, error) {
	d := s.d
	if err := d.faultErr(); err != nil {
		return nil, err
	}
	if a < 0 || int64(a) >= d.nblocks {
		return nil, fmt.Errorf("store: block %d out of range [0,%d)", a, d.nblocks)
	}
	s.charge(a)
	off := int64(a) * int64(d.p.BlockSize)
	return d.data[off : off+int64(d.p.BlockSize)], nil
}

// ReadExtent reads a whole extent (first block potentially random, the rest
// sequential) and returns exactly ext.Length payload bytes.
func (s *Session) ReadExtent(ext Extent) ([]byte, error) {
	d := s.d
	if err := d.faultErr(); err != nil {
		return nil, err
	}
	// Subtract instead of adding: Start+Blocks overflows int64 for a
	// hostile Start near MaxInt64 and would wrap past the bound.
	if ext.Start < 0 || ext.Blocks < 0 || int64(ext.Start) > d.nblocks-int64(ext.Blocks) {
		return nil, fmt.Errorf("store: extent %+v out of range", ext)
	}
	for i := int32(0); i < ext.Blocks; i++ {
		s.charge(ext.Start + Addr(i))
	}
	off := int64(ext.Start) * int64(d.p.BlockSize)
	return d.data[off : off+ext.Length], nil
}

func (s *Session) charge(a Addr) {
	d := s.d
	s.stats.BlockReads++
	s.stats.BytesRead += int64(d.p.BlockSize)
	if a == s.lastRead+1 {
		s.stats.SeqReads++
		s.stats.SimTime += d.transferPerBlock
	} else {
		s.stats.RandomReads++
		s.stats.SimTime += d.randomPenalty + d.transferPerBlock
	}
	s.lastRead = a
}

// Stats returns a snapshot of the statistics this session accumulated.
func (s *Session) Stats() Stats { return s.stats }

// Corrupt flips one byte at the given block-relative offset. It exists for
// the failure-injection test suite and the tamper-detection examples; a real
// deployment obviously has no such API. Like AllocWrite, it mutates the
// shared block contents and must not run concurrently with sessions.
func (d *Device) Corrupt(a Addr, offset int, xor byte) error {
	if a < 0 || int64(a) >= d.nblocks {
		return fmt.Errorf("store: corrupt block %d out of range", a)
	}
	if offset < 0 || offset >= d.p.BlockSize {
		return fmt.Errorf("store: corrupt offset %d out of range", offset)
	}
	d.data[int64(a)*int64(d.p.BlockSize)+int64(offset)] ^= xor
	return nil
}
