// Package textproc implements the document-parsing pipeline of §4.1: case
// folding, tokenisation, and stopword removal. Like the paper's setup (which
// uses Lucene's parser) it performs stopword removal but NOT stemming.
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize lowercases text and splits it into maximal runs of letters and
// digits. Apostrophes inside a word are dropped (so "don't" → "dont"),
// matching the behaviour of classic IR tokenisers.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '\'':
			// joins word parts: skip
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// IsStopword reports whether the (lowercase) token is in the stopword list.
func IsStopword(tok string) bool {
	_, ok := stopset[tok]
	return ok
}

// RemoveStopwords filters the stopwords out of tokens, preserving order.
func RemoveStopwords(tokens []string) []string {
	out := tokens[:0:0]
	for _, t := range tokens {
		if !IsStopword(t) {
			out = append(out, t)
		}
	}
	return out
}

// Terms is the full pipeline: tokenize then remove stopwords.
func Terms(text string) []string {
	return RemoveStopwords(Tokenize(text))
}

// Counts returns the multiplicity of each token (e.g. f_{Q,t} for queries,
// f_{d,t} for documents).
func Counts(tokens []string) map[string]int {
	m := make(map[string]int, len(tokens))
	for _, t := range tokens {
		m[t]++
	}
	return m
}

// stopwords is a standard English list (the classic Glasgow/SMART-derived
// short list used by most IR systems, which is what "removing stopwords
// like 'of', 'the' and 'to'" in §4.4 refers to).
var stopwords = []string{
	"a", "about", "above", "after", "again", "against", "all", "am", "an",
	"and", "any", "are", "as", "at", "be", "because", "been", "before",
	"being", "below", "between", "both", "but", "by", "can", "cannot",
	"could", "did", "do", "does", "doing", "down", "during", "each", "few",
	"for", "from", "further", "had", "has", "have", "having", "he", "her",
	"here", "hers", "herself", "him", "himself", "his", "how", "i", "if",
	"in", "into", "is", "it", "its", "itself", "me", "more", "most", "my",
	"myself", "no", "nor", "not", "of", "off", "on", "once", "only", "or",
	"other", "ought", "our", "ours", "ourselves", "out", "over", "own",
	"same", "she", "should", "so", "some", "such", "than", "that", "the",
	"their", "theirs", "them", "themselves", "then", "there", "these",
	"they", "this", "those", "through", "to", "too", "under", "until",
	"up", "very", "was", "we", "were", "what", "when", "where", "which",
	"while", "who", "whom", "why", "with", "would", "you", "your", "yours",
	"yourself", "yourselves",
}

var stopset = func() map[string]struct{} {
	m := make(map[string]struct{}, len(stopwords))
	for _, w := range stopwords {
		m[w] = struct{}{}
	}
	return m
}()
