package textproc

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenizeBasics(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"The old night keeper keeps the keep in the town", []string{"the", "old", "night", "keeper", "keeps", "the", "keep", "in", "the", "town"}},
		{"Hello, World!", []string{"hello", "world"}},
		{"don't stop", []string{"dont", "stop"}},
		{"x86-64 CPUs", []string{"x86", "64", "cpus"}},
		{"", nil},
		{"   \t\n ", nil},
		{"ÜBER-café", []string{"über", "café"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"the", "of", "to", "and", "a", "in"} {
		if !IsStopword(w) {
			t.Errorf("%q should be a stopword", w)
		}
	}
	for _, w := range []string{"patent", "elderly", "abuse", "keeper"} {
		if IsStopword(w) {
			t.Errorf("%q should not be a stopword", w)
		}
	}
}

func TestTermsPipeline(t *testing.T) {
	// Topic 181 fragment from §4.4: stopwords removed, no stemming.
	got := Terms("Abuse of the Elderly by Family Members")
	want := []string{"abuse", "elderly", "family", "members"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestCounts(t *testing.T) {
	got := Counts([]string{"keep", "keeper", "keep"})
	if got["keep"] != 2 || got["keeper"] != 1 {
		t.Fatalf("Counts wrong: %v", got)
	}
}

func TestRemoveStopwordsKeepsOrder(t *testing.T) {
	got := RemoveStopwords([]string{"the", "dark", "in", "night"})
	want := []string{"dark", "night"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// Property: tokens never contain uppercase or non-alphanumeric runes, and
// tokenisation is idempotent under re-joining.
func TestTokenizeProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
