package authtext

import (
	"errors"
	"fmt"

	"authtext/internal/linkgraph"
)

// WithAuthority enables the §5 authority-boost extension with explicit
// per-document scores: result rankings become S(d|Q) + beta·A(d) for
// matching documents, with scores[d] ∈ [0, 1] certified in an
// authority-MHT. len(scores) must equal the number of documents.
func WithAuthority(scores []float64, beta float64) Option {
	return func(o *options) {
		o.authority = scores
		o.beta = beta
	}
}

// WithPageRank enables the authority boost with scores computed by
// PageRank over a hyperlink graph: outlinks[d] lists the documents d links
// to. Damping 0.85, normalised so the top authority scores 1.
func WithPageRank(outlinks [][]int, beta float64) Option {
	return func(o *options) {
		o.pageRankLinks = outlinks
		o.beta = beta
	}
}

// computeAuthority resolves the authority options against the collection
// size.
func computeAuthority(o *options, nDocs int) ([]float64, error) {
	if o.authority != nil && o.pageRankLinks != nil {
		return nil, errors.New("authtext: WithAuthority and WithPageRank are mutually exclusive")
	}
	if o.authority != nil {
		if len(o.authority) != nDocs {
			return nil, fmt.Errorf("authtext: %d authority scores for %d documents", len(o.authority), nDocs)
		}
		return o.authority, nil
	}
	if o.pageRankLinks != nil {
		if len(o.pageRankLinks) != nDocs {
			return nil, fmt.Errorf("authtext: link lists for %d documents, have %d", nDocs, len(o.pageRankLinks))
		}
		g := linkgraph.NewGraph(nDocs)
		for src, outs := range o.pageRankLinks {
			for _, dst := range outs {
				if err := g.AddLink(src, dst); err != nil {
					return nil, err
				}
			}
		}
		return g.Normalized(0.85, 100, 1e-10)
	}
	return nil, nil
}
